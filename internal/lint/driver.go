package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// cacheVersion invalidates every cached result when the driver's on-disk
// format or the analyzers' semantics change incompatibly. Bump it whenever a
// released analyzer starts reporting different findings for identical source.
const cacheVersion = "dynnlint-cache-v1"

// Options configures Analyze.
type Options struct {
	// Analyzers to run; nil means All().
	Analyzers []*Analyzer
	// CacheDir holds per-package result files keyed by content hash; ""
	// disables caching entirely.
	CacheDir string
	// Jobs bounds type-check and analysis parallelism; <=0 means GOMAXPROCS.
	Jobs int
}

// Stats reports what Analyze actually did, so callers (and tests) can tell a
// warm run from a cold one.
type Stats struct {
	// Packages is the number of requested (matched) packages.
	Packages int `json:"packages"`
	// CacheHits is how many requested packages were served from cache.
	CacheHits int `json:"cache_hits"`
	// CacheMisses is how many requested packages were analyzed fresh.
	CacheMisses int `json:"cache_misses"`
	// LoadedPackages is how many packages were parsed and type-checked —
	// the misses plus every module dependency a miss needed. A fully warm
	// run loads zero.
	LoadedPackages int `json:"loaded_packages"`
}

// Result is Analyze's output: position-sorted surviving findings plus stats.
type Result struct {
	Findings []Finding
	Stats    Stats
}

// Analyze is the incremental parallel driver behind cmd/dynnlint. It expands
// patterns relative to root, computes a content hash per package (own files +
// transitive module deps + analyzer set), serves unchanged packages from the
// cache, and type-checks + analyzes the rest with a bounded worker pool.
// Findings cache post-suppression, so editing a //dynnlint:ignore directive
// changes the file hash and re-lints the package.
func Analyze(root string, patterns []string, opts Options) (*Result, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	analyzers := opts.Analyzers
	if analyzers == nil {
		analyzers = All()
	}
	jobs := opts.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}

	sc, err := scanModule(root, patterns)
	if err != nil {
		return nil, err
	}
	res := &Result{Stats: Stats{Packages: len(sc.requested)}}

	// Cache lookup: a requested package whose key file exists is a hit.
	keys := map[string]string{}
	if opts.CacheDir != "" {
		for _, path := range sc.order {
			k, err := sc.keyOf(path, analyzers)
			if err != nil {
				return nil, err
			}
			keys[path] = k
		}
	}
	var misses []string
	for _, path := range sc.requested {
		if opts.CacheDir != "" {
			if cached, ok := readCache(opts.CacheDir, keys[path]); ok {
				res.Stats.CacheHits++
				for _, f := range cached {
					f.File = filepath.Join(root, filepath.FromSlash(f.File))
					res.Findings = append(res.Findings, f)
				}
				continue
			}
		}
		res.Stats.CacheMisses++
		misses = append(misses, path)
	}

	if len(misses) > 0 {
		// Every miss plus its transitive module deps must be type-checked;
		// cache hits outside that closure are never touched.
		need := map[string]bool{}
		var mark func(path string)
		mark = func(path string) {
			if need[path] {
				return
			}
			need[path] = true
			for _, dep := range sc.deps[path] {
				mark(dep)
			}
		}
		for _, path := range misses {
			mark(path)
		}
		res.Stats.LoadedPackages = len(need)

		l := NewLoader()
		if err := checkParallel(l, sc, need, jobs); err != nil {
			return nil, err
		}

		// Analyze misses concurrently; each analysis touches only its own
		// package plus read-only imported types.
		fresh := make([][]Finding, len(misses))
		var wg sync.WaitGroup
		sem := make(chan struct{}, jobs)
		for i, path := range misses {
			pkg, ok := l.lookup(path)
			if !ok {
				return nil, fmt.Errorf("lint: package %s not loaded", path)
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, pkg *Package) {
				defer wg.Done()
				defer func() { <-sem }()
				fresh[i] = runPackage(pkg, analyzers)
			}(i, pkg)
		}
		wg.Wait()
		for i, path := range misses {
			res.Findings = append(res.Findings, fresh[i]...)
			if opts.CacheDir != "" {
				writeCache(opts.CacheDir, keys[path], root, fresh[i])
			}
		}
	}

	sortFindings(res.Findings)
	return res, nil
}

// moduleScan is the imports-only view of the requested packages and their
// module-internal dependency closure: enough to compute cache keys and a
// type-check schedule without parsing function bodies.
type moduleScan struct {
	root      string
	modPath   string
	requested []string            // pattern-matched import paths, pattern order
	order     []string            // requested + dependency closure
	dirs      map[string]string   // import path -> directory
	files     map[string][]string // import path -> sorted non-test .go files
	deps      map[string][]string // module-internal imports only

	keys map[string]string // memoized cache keys
}

// scanModule parses import clauses only (no bodies) across the requested
// patterns and the module-internal packages they reach.
func scanModule(root string, patterns []string) (*moduleScan, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(root, patterns)
	if err != nil {
		return nil, err
	}
	sc := &moduleScan{
		root:    root,
		modPath: modPath,
		dirs:    map[string]string{},
		files:   map[string][]string{},
		deps:    map[string][]string{},
		keys:    map[string]string{},
	}
	var scan func(path, dir string) error
	scan = func(path, dir string) error {
		if _, done := sc.dirs[path]; done {
			return nil
		}
		sc.dirs[path] = dir
		ents, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		fset := token.NewFileSet()
		seen := map[string]bool{}
		for _, e := range ents {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") ||
				strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
				continue
			}
			fn := filepath.Join(dir, name)
			f, err := parser.ParseFile(fset, fn, nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			sc.files[path] = append(sc.files[path], fn)
			for _, imp := range f.Imports {
				ip := strings.Trim(imp.Path.Value, `"`)
				if !seen[ip] && (ip == modPath || strings.HasPrefix(ip, modPath+"/")) {
					seen[ip] = true
					sc.deps[path] = append(sc.deps[path], ip)
				}
			}
		}
		if len(sc.files[path]) == 0 {
			delete(sc.dirs, path)
			return nil
		}
		sort.Strings(sc.files[path])
		sort.Strings(sc.deps[path])
		sc.order = append(sc.order, path)
		for _, ip := range sc.deps[path] {
			rel := strings.TrimPrefix(strings.TrimPrefix(ip, modPath), "/")
			if err := scan(ip, filepath.Join(root, filepath.FromSlash(rel))); err != nil {
				return fmt.Errorf("lint: cannot load module import %q: %v", ip, err)
			}
		}
		return nil
	}
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		if err := scan(path, dir); err != nil {
			return nil, err
		}
		if _, ok := sc.dirs[path]; ok {
			sc.requested = append(sc.requested, path)
		}
	}
	return sc, nil
}

// keyOf computes the package's cache key: the version tag, toolchain, and
// analyzer set, the package's own file contents, and — transitively — the
// keys of its module dependencies. Any edit anywhere in the dependency cone
// therefore misses.
func (sc *moduleScan) keyOf(path string, analyzers []*Analyzer) (string, error) {
	if k, ok := sc.keys[path]; ok {
		return k, nil
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\n", cacheVersion, runtime.Version())
	names := make([]string, len(analyzers))
	for i, an := range analyzers {
		names[i] = an.Name
	}
	sort.Strings(names)
	fmt.Fprintf(h, "analyzers=%s\n", strings.Join(names, ","))
	fmt.Fprintf(h, "pkg=%s\n", path)
	for _, fn := range sc.files[path] {
		data, err := os.ReadFile(fn)
		if err != nil {
			return "", err
		}
		sum := sha256.Sum256(data)
		fmt.Fprintf(h, "file=%s %s\n", filepath.Base(fn), hex.EncodeToString(sum[:]))
	}
	for _, dep := range sc.deps[path] {
		dk, err := sc.keyOf(dep, analyzers)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "dep=%s %s\n", dep, dk)
	}
	k := hex.EncodeToString(h.Sum(nil))
	sc.keys[path] = k
	return k, nil
}

// cachedFindings is the on-disk cache entry: post-suppression findings with
// root-relative slash paths, so entries survive a checkout move.
type cachedFindings struct {
	Findings []Finding `json:"findings"`
}

func cachePath(dir, key string) string { return filepath.Join(dir, key+".json") }

func readCache(dir, key string) ([]Finding, bool) {
	data, err := os.ReadFile(cachePath(dir, key))
	if err != nil {
		return nil, false
	}
	var c cachedFindings
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, false
	}
	return c.Findings, true
}

// writeCache persists findings best-effort: a cache write failure never fails
// the lint run. Files land via rename so concurrent runs see whole entries.
func writeCache(dir, key, root string, findings []Finding) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	c := cachedFindings{Findings: []Finding{}}
	for _, f := range findings {
		if rel, err := filepath.Rel(root, f.File); err == nil && !strings.HasPrefix(rel, "..") {
			f.File = filepath.ToSlash(rel)
		}
		c.Findings = append(c.Findings, f)
	}
	data, err := json.Marshal(c)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(dir, "tmp-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err == nil {
		tmp.Close()
		os.Rename(tmp.Name(), cachePath(dir, key))
	} else {
		tmp.Close()
		os.Remove(tmp.Name())
	}
}

// checkParallel parses and type-checks the needed packages in dependency
// waves: a package becomes ready when all its module deps are stored, and
// ready packages run on up to jobs workers. The loader serializes the two
// shared structures (package map, stdlib importer) internally.
func checkParallel(l *Loader, sc *moduleScan, need map[string]bool, jobs int) error {
	unmet := map[string]int{}
	dependents := map[string][]string{}
	var ready []string
	for path := range need {
		n := 0
		for _, dep := range sc.deps[path] {
			if need[dep] {
				n++
				dependents[dep] = append(dependents[dep], path)
			}
		}
		unmet[path] = n
		if n == 0 {
			ready = append(ready, path)
		}
	}
	sort.Strings(ready)

	var (
		mu        sync.Mutex
		cond      = sync.NewCond(&mu)
		remaining = len(need)
		firstErr  error
	)
	if jobs > remaining {
		jobs = remaining
	}
	if jobs < 1 {
		jobs = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for len(ready) == 0 && remaining > 0 && firstErr == nil {
					cond.Wait()
				}
				if remaining == 0 || firstErr != nil {
					mu.Unlock()
					return
				}
				path := ready[0]
				ready = ready[1:]
				mu.Unlock()

				pkg, err := loadOne(l, sc, path)

				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
				} else {
					l.store(pkg)
					for _, dep := range dependents[path] {
						unmet[dep]--
						if unmet[dep] == 0 {
							ready = append(ready, dep)
						}
					}
				}
				remaining--
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// loadOne parses (full AST, with comments) and type-checks a single package.
func loadOne(l *Loader, sc *moduleScan, path string) (*Package, error) {
	p, err := l.parseDirAs(sc.dirs[path], path)
	if err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", sc.dirs[path])
	}
	return l.typeCheck(p)
}
