package lint

// All returns the full dynnlint analyzer suite in reporting order: the five
// AST-shallow passes from the original linter, then the four CFG/dataflow
// resource-discipline passes.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism, Lockcheck, Floatcmp, Errdiscipline, Panicfree,
		Allocleak, Clockunits, Spanbalance, Facade,
	}
}

// ByName returns the subset of All() named in names (nil names = all).
func ByName(names []string) []*Analyzer {
	if len(names) == 0 {
		return All()
	}
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	var out []*Analyzer
	for _, an := range All() {
		if want[an.Name] {
			out = append(out, an)
		}
	}
	return out
}
