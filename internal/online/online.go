// Package online closes the serve→pilot feedback loop: the serving layer
// observes an endless labeled stream (predicted path vs. actually resolved
// path), and this package turns it into in-loop pilot learning. The shape
// follows DROO's MemoryDNN idiom — a bounded replay ring of labeled outcomes,
// retrained every TrainingInterval arrivals on a seeded minibatch — with one
// addition motivated by DyCL's observation that hot dynamic variants recur
// per workload: optional per-tenant adapter pilots (shared base, per-tenant
// ring, fine-tuned output head) so tenants with skewed path distributions
// specialize.
//
// Everything here is deterministic by construction: sampling uses the
// repo-wide splitmix64 RNG (no global RNG), retraining runs serially between
// serving dispatches on the simulated clock, and the package sits inside
// dynnlint's determinism scope. For a fixed config and observation order the
// retrained weights — and therefore every downstream prediction — are
// bit-identical at any worker count, fault-free or faulted.
package online

import (
	"fmt"

	"dynnoffload/internal/mathx"
	"dynnoffload/internal/obsv"
	"dynnoffload/internal/pilot"
)

// Config parameterizes the online learner. The zero value means disabled;
// Enabled with everything else zero gets the documented defaults.
type Config struct {
	// Enabled turns the feedback loop on. Off, the serving layer behaves
	// byte-for-byte as if this package did not exist.
	Enabled bool
	// ObserveOnly tracks the mispredict-rate trajectory and fills the replay
	// memory but never retrains — the frozen-pilot control arm of the online
	// sweep. Predictions are identical to Enabled=false.
	ObserveOnly bool
	// MemorySize is the shared replay ring capacity (default 256). Once full,
	// the oldest entry is overwritten — DROO's counter % memory_size rule.
	MemorySize int
	// TrainingInterval retrains every N observed completions (default 16).
	TrainingInterval int
	// MinibatchSize is the number of ring entries sampled per retrain,
	// clamped to the ring's live size (default 32).
	MinibatchSize int
	// Epochs per retrain over the minibatch (default 1).
	Epochs int
	// LR and Momentum are the SGD hyper-parameters for Refine
	// (defaults 0.01 and 0.9).
	LR       float64
	Momentum float64
	// HeadOnly restricts the shared-pilot refinement to each MLP's output
	// layer. Per-tenant adapters are always head-only regardless.
	HeadOnly bool
	// Seed drives minibatch sampling and shuffle seeds (default 1).
	Seed uint64
	// PerTenant enables per-tenant adapter pilots: each tenant keeps its own
	// replay ring and, once AdapterMinExamples outcomes have accumulated,
	// a clone of the shared pilot whose head fine-tunes on that ring alone.
	// Cold tenants fall back to the shared pilot.
	PerTenant bool
	// TenantMemorySize is each tenant ring's capacity (default 64).
	TenantMemorySize int
	// AdapterMinExamples is the warm-up threshold before a tenant gets its
	// own adapter (default 32).
	AdapterMinExamples int
	// RetrainCostNS is the simulated host-timeline cost of one SGD step
	// (one example × one epoch) during a retrain stall (default 20000).
	RetrainCostNS int64
	// WindowSize is the mispredict-trajectory window: every WindowSize
	// observations close one OnlineWindowRate point (default 40).
	WindowSize int
}

// withDefaults fills unset knobs with the documented defaults.
func (c Config) withDefaults() Config {
	if c.MemorySize <= 0 {
		c.MemorySize = 256
	}
	if c.TrainingInterval <= 0 {
		c.TrainingInterval = 16
	}
	if c.MinibatchSize <= 0 {
		c.MinibatchSize = 32
	}
	if c.Epochs <= 0 {
		c.Epochs = 1
	}
	if c.LR == 0 {
		c.LR = 0.01
	}
	if c.Momentum == 0 {
		c.Momentum = 0.9
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.TenantMemorySize <= 0 {
		c.TenantMemorySize = 64
	}
	if c.AdapterMinExamples <= 0 {
		c.AdapterMinExamples = 32
	}
	if c.RetrainCostNS <= 0 {
		c.RetrainCostNS = 20_000
	}
	if c.WindowSize <= 0 {
		c.WindowSize = 40
	}
	return c
}

// Memory is a bounded replay ring of labeled serving outcomes. Entries are
// (features, truth-path label) pairs — pilot.Example carries both — stored at
// seen % capacity so a full ring always holds the most recent capacity
// observations.
type Memory struct {
	capacity int
	ents     []*pilot.Example
	seen     int64
}

// NewMemory builds an empty ring with the given capacity (min 1).
func NewMemory(capacity int) *Memory {
	if capacity < 1 {
		capacity = 1
	}
	return &Memory{capacity: capacity}
}

// Add records one outcome, overwriting the oldest once the ring is full.
func (m *Memory) Add(ex *pilot.Example) {
	if len(m.ents) < m.capacity {
		m.ents = append(m.ents, ex)
	} else {
		m.ents[m.seen%int64(m.capacity)] = ex
	}
	m.seen++
}

// Len is the number of live entries; Cap the fixed capacity; Seen the
// all-time observation count.
func (m *Memory) Len() int    { return len(m.ents) }
func (m *Memory) Cap() int    { return m.capacity }
func (m *Memory) Seen() int64 { return m.seen }

// Sample draws min(n, Len) entries without replacement using rng — a seeded
// permutation prefix, so a fixed rng state yields a fixed minibatch.
func (m *Memory) Sample(rng *mathx.RNG, n int) []*pilot.Example {
	if n > len(m.ents) {
		n = len(m.ents)
	}
	if n <= 0 {
		return nil
	}
	perm := rng.Perm(len(m.ents))
	out := make([]*pilot.Example, n)
	for i := 0; i < n; i++ {
		out[i] = m.ents[perm[i]]
	}
	return out
}

// tenantState is one tenant's slice of the learner: its own ring, its own
// RNG stream, and — once warm — its adapter pilot.
type tenantState struct {
	mem       *Memory
	rng       *mathx.RNG
	adapter   *pilot.Pilot
	sinceWarm int
}

// Learner owns the feedback loop for one serving run. The serving loops call
// Observe serially, in completion-processing order, between dispatches — so
// no locking is needed and the retrain schedule is a pure function of the
// observation sequence.
type Learner struct {
	cfg  Config
	base *pilot.Pilot // offline-trained pilot, never mutated
	// shared is the online-refined clone; nil until the first retrain, so
	// before any learning PilotFor falls back to the engine's own pilot.
	shared  *pilot.Pilot
	mem     *Memory
	rng     *mathx.RNG
	tenants []*tenantState

	observed    int64
	mispredicts int64
	retrains    int64
	retrainNS   int64
	windowMis   int
	windowN     int
	windows     []obsv.OnlineWindowRate
}

// New builds a learner over a trained base pilot for numTenants tenants.
func New(cfg Config, base *pilot.Pilot, numTenants int) (*Learner, error) {
	cfg = cfg.withDefaults()
	if base == nil || !base.Trained() {
		return nil, fmt.Errorf("online: %w", pilot.ErrNotTrained)
	}
	l := &Learner{
		cfg:  cfg,
		base: base,
		mem:  NewMemory(cfg.MemorySize),
		rng:  mathx.NewRNG(cfg.Seed).Fork(0x0e11),
	}
	if numTenants < 0 {
		numTenants = 0
	}
	for t := 0; t < numTenants; t++ {
		l.tenants = append(l.tenants, &tenantState{
			mem: NewMemory(cfg.TenantMemorySize),
			rng: mathx.NewRNG(cfg.Seed).Fork(0x7e40 + uint64(t)),
		})
	}
	return l, nil
}

// PilotFor returns the pilot that should resolve tenant's next request: the
// tenant's adapter once warm, else the shared refined pilot once the first
// retrain has run, else nil — meaning "use the engine's own pilot", which is
// exactly the base. ObserveOnly always returns nil so the control arm
// predicts identically to a run with learning off.
func (l *Learner) PilotFor(tenant int) *pilot.Pilot {
	if l == nil || !l.cfg.Enabled || l.cfg.ObserveOnly {
		return nil
	}
	if l.cfg.PerTenant && tenant >= 0 && tenant < len(l.tenants) {
		if a := l.tenants[tenant].adapter; a != nil {
			return a
		}
	}
	return l.shared
}

// Observe feeds one completed request's outcome — its example (features +
// truth-path label) and whether the pilot mispredicted it — into the replay
// memory, and fires any retrain the observation count now triggers. It
// returns the simulated host-timeline stall the retrains cost (0 almost
// always). Must be called serially in the run's deterministic completion
// order.
func (l *Learner) Observe(tenant int, ex *pilot.Example, mispredicted bool) (int64, error) {
	if l == nil || !l.cfg.Enabled || ex == nil {
		return 0, nil
	}
	l.observed++
	l.windowN++
	if mispredicted {
		l.mispredicts++
		l.windowMis++
	}
	if l.windowN == l.cfg.WindowSize {
		l.windows = append(l.windows, obsv.OnlineWindowRate{
			EndSeq:      l.observed,
			Mispredicts: l.windowMis,
			Window:      l.cfg.WindowSize,
			Rate:        float64(l.windowMis) / float64(l.cfg.WindowSize),
		})
		l.windowMis, l.windowN = 0, 0
	}
	l.mem.Add(ex)
	var ts *tenantState
	if l.cfg.PerTenant && tenant >= 0 && tenant < len(l.tenants) {
		ts = l.tenants[tenant]
		ts.mem.Add(ex)
	}
	if l.cfg.ObserveOnly {
		return 0, nil
	}

	var stallNS int64
	if l.observed%int64(l.cfg.TrainingInterval) == 0 {
		if l.shared == nil {
			l.shared = l.base.Clone()
		}
		cost, err := l.retrain(l.shared, l.mem, l.rng, l.cfg.HeadOnly)
		if err != nil {
			return stallNS, err
		}
		stallNS += cost
	}
	if ts != nil {
		if ts.adapter == nil && ts.mem.Len() >= l.cfg.AdapterMinExamples {
			// Warm the adapter from the current shared pilot (or the base if
			// no shared retrain has fired yet) so it inherits all learning so
			// far; from here on only its head moves, on this tenant's ring.
			src := l.shared
			if src == nil {
				src = l.base
			}
			ts.adapter = src.Clone()
			ts.sinceWarm = 0
		}
		if ts.adapter != nil {
			ts.sinceWarm++
			if ts.sinceWarm%l.cfg.TrainingInterval == 0 {
				cost, err := l.retrain(ts.adapter, ts.mem, ts.rng, true)
				if err != nil {
					return stallNS, err
				}
				stallNS += cost
			}
		}
	}
	return stallNS, nil
}

// retrain runs one seeded-minibatch Refine on p and returns its simulated
// cost: RetrainCostNS per example per epoch.
func (l *Learner) retrain(p *pilot.Pilot, mem *Memory, rng *mathx.RNG, headOnly bool) (int64, error) {
	batch := mem.Sample(rng, l.cfg.MinibatchSize)
	if len(batch) == 0 {
		return 0, nil
	}
	_, err := p.Refine(batch, pilot.RefineConfig{
		LR: l.cfg.LR, Momentum: l.cfg.Momentum, Epochs: l.cfg.Epochs,
		Seed: rng.Uint64(), HeadOnly: headOnly,
	})
	if err != nil {
		return 0, err
	}
	l.retrains++
	cost := l.cfg.RetrainCostNS * int64(len(batch)) * int64(l.cfg.Epochs)
	l.retrainNS += cost
	return cost, nil
}

// SharedPilot returns the online-refined shared pilot, or nil if no retrain
// has fired yet. The persistence path saves it with the learner's metadata.
func (l *Learner) SharedPilot() *pilot.Pilot {
	if l == nil {
		return nil
	}
	return l.shared
}

// Meta returns the replay-ring provenance for pilot.SaveWithMeta: capacity,
// observed count, retrain count, and the training interval.
func (l *Learner) Meta() map[string]string {
	if l == nil {
		return nil
	}
	return map[string]string{
		"online.memory_cap":        fmt.Sprint(l.mem.Cap()),
		"online.observed":          fmt.Sprint(l.observed),
		"online.retrains":          fmt.Sprint(l.retrains),
		"online.training_interval": fmt.Sprint(l.cfg.TrainingInterval),
	}
}

// Stats snapshots the run's online-learning summary (nil receiver → nil, so
// a disabled run's report carries no online section).
func (l *Learner) Stats() *obsv.OnlineStats {
	if l == nil || !l.cfg.Enabled {
		return nil
	}
	s := &obsv.OnlineStats{
		Observed:    l.observed,
		Mispredicts: l.mispredicts,
		Retrains:    l.retrains,
		RetrainNS:   l.retrainNS,
		MemorySize:  l.mem.Len(),
		MemoryCap:   l.mem.Cap(),
		WindowRates: append([]obsv.OnlineWindowRate(nil), l.windows...),
	}
	for _, ts := range l.tenants {
		if ts.adapter != nil {
			s.AdapterTenants++
		}
	}
	return s
}
