package online

import (
	"errors"
	"testing"

	"dynnoffload/internal/dynn"
	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/mathx"
	"dynnoffload/internal/pilot"
)

// testFixture builds a small trained pilot and an example stream over one
// var-LSTM context.
func testFixture(t *testing.T) (*pilot.Pilot, []*pilot.Example) {
	t.Helper()
	m := dynn.NewVarLSTM(dynn.VarLSTMConfig{Hidden: 16, Batch: 1, Seed: 3})
	ctx, err := pilot.NewModelContext(m, gpusim.NewCostModel(gpusim.RTXPlatform()), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	exs, err := pilot.BuildExamples(ctx, pilot.FeatureConfig{}, dynn.GenerateSamples(9, 160, 8, 32))
	if err != nil {
		t.Fatal(err)
	}
	p := pilot.New(pilot.Config{Neurons: 24, Epochs: 3, Seed: 7})
	p.Train(exs[:100])
	return p, exs
}

func TestMemoryRingWraparound(t *testing.T) {
	_, exs := testFixture(t)
	m := NewMemory(4)
	for i := 0; i < 6; i++ {
		m.Add(exs[i])
	}
	if m.Len() != 4 || m.Cap() != 4 || m.Seen() != 6 {
		t.Fatalf("Len=%d Cap=%d Seen=%d, want 4/4/6", m.Len(), m.Cap(), m.Seen())
	}
	// DROO's seen%capacity rule: entries 4 and 5 overwrote slots 0 and 1.
	want := []*pilot.Example{exs[4], exs[5], exs[2], exs[3]}
	for i, w := range want {
		if m.ents[i] != w {
			t.Errorf("slot %d holds exs[%d]-mismatch", i, i)
		}
	}
}

func TestMemorySampleSeededAndBounded(t *testing.T) {
	_, exs := testFixture(t)
	m := NewMemory(16)
	for i := 0; i < 10; i++ {
		m.Add(exs[i])
	}
	a := m.Sample(mathx.NewRNG(11), 4)
	b := m.Sample(mathx.NewRNG(11), 4)
	if len(a) != 4 {
		t.Fatalf("sample len %d, want 4", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed drew different minibatches at %d", i)
		}
	}
	// Without replacement: no duplicates.
	seen := map[*pilot.Example]bool{}
	for _, e := range a {
		if seen[e] {
			t.Fatal("sample drew a duplicate")
		}
		seen[e] = true
	}
	// Oversized requests clamp to the live size.
	if got := m.Sample(mathx.NewRNG(12), 99); len(got) != 10 {
		t.Fatalf("oversized sample len %d, want 10", len(got))
	}
	if got := NewMemory(4).Sample(mathx.NewRNG(13), 2); got != nil {
		t.Fatalf("empty ring sampled %d entries", len(got))
	}
}

func TestNewRequiresTrainedBase(t *testing.T) {
	if _, err := New(Config{Enabled: true}, pilot.New(pilot.Config{Neurons: 8, Epochs: 1, Seed: 1}), 0); !errors.Is(err, pilot.ErrNotTrained) {
		t.Fatalf("New on untrained base: err=%v, want ErrNotTrained", err)
	}
	if _, err := New(Config{Enabled: true}, nil, 0); !errors.Is(err, pilot.ErrNotTrained) {
		t.Fatalf("New on nil base: err=%v, want ErrNotTrained", err)
	}
}

func TestObserveWindows(t *testing.T) {
	p, exs := testFixture(t)
	l, err := New(Config{Enabled: true, ObserveOnly: true, WindowSize: 4}, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 10 observations, mispredicted on every even index: windows close at 4
	// and 8; the trailing partial window stays open.
	for i := 0; i < 10; i++ {
		if _, err := l.Observe(0, exs[i], i%2 == 0); err != nil {
			t.Fatal(err)
		}
	}
	s := l.Stats()
	if s.Observed != 10 || s.Mispredicts != 5 {
		t.Fatalf("Observed=%d Mispredicts=%d, want 10/5", s.Observed, s.Mispredicts)
	}
	if len(s.WindowRates) != 2 {
		t.Fatalf("windows=%d, want 2", len(s.WindowRates))
	}
	for i, w := range s.WindowRates {
		if w.EndSeq != int64(4*(i+1)) || w.Window != 4 || w.Mispredicts != 2 || w.Rate != 0.5 {
			t.Errorf("window %d = %+v, want end=%d window=4 mis=2 rate=0.5", i, w, 4*(i+1))
		}
	}
}

func TestObserveOnlyNeverRetrains(t *testing.T) {
	p, exs := testFixture(t)
	l, err := New(Config{Enabled: true, ObserveOnly: true, TrainingInterval: 2, MemorySize: 8}, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		stall, err := l.Observe(0, exs[i], true)
		if err != nil {
			t.Fatal(err)
		}
		if stall != 0 {
			t.Fatalf("ObserveOnly charged a %dns stall", stall)
		}
		if l.PilotFor(0) != nil {
			t.Fatal("ObserveOnly PilotFor must stay nil (engine pilot)")
		}
	}
	s := l.Stats()
	if s.Retrains != 0 || s.RetrainNS != 0 {
		t.Fatalf("ObserveOnly retrained: %+v", s)
	}
	if s.MemorySize != 8 || s.MemoryCap != 8 {
		t.Fatalf("replay ring did not fill: %+v", s)
	}
}

func TestRetrainScheduleAndPilotFor(t *testing.T) {
	p, exs := testFixture(t)
	const interval, mb, epochs = 4, 8, 2
	var costNS int64 = 1000
	l, err := New(Config{
		Enabled: true, TrainingInterval: interval, MinibatchSize: mb,
		Epochs: epochs, RetrainCostNS: costNS,
	}, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < interval-1; i++ {
		stall, err := l.Observe(0, exs[i], true)
		if err != nil {
			t.Fatal(err)
		}
		if stall != 0 || l.PilotFor(0) != nil {
			t.Fatalf("retrain fired before the interval (obs %d)", i+1)
		}
	}
	stall, err := l.Observe(0, exs[interval-1], true)
	if err != nil {
		t.Fatal(err)
	}
	// First retrain: ring holds `interval` entries, all sampled.
	if want := costNS * interval * epochs; stall != want {
		t.Fatalf("first retrain stall = %d, want %d", stall, want)
	}
	shared := l.PilotFor(0)
	if shared == nil {
		t.Fatal("PilotFor nil after first retrain")
	}
	if shared == p {
		t.Fatal("learner must refine a clone, not the base pilot")
	}
	if s := l.Stats(); s.Retrains != 1 || s.RetrainNS != stall {
		t.Fatalf("stats after first retrain: %+v", s)
	}
}

func TestAdapterWarmup(t *testing.T) {
	p, exs := testFixture(t)
	l, err := New(Config{
		Enabled: true, PerTenant: true, TrainingInterval: 3,
		AdapterMinExamples: 4, TenantMemorySize: 8, RetrainCostNS: 1,
	}, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Feed tenant 0 only: its adapter warms at 4 observations; tenant 1
	// stays cold and keeps resolving through the shared pilot.
	for i := 0; i < 12; i++ {
		if _, err := l.Observe(0, exs[i], i%2 == 0); err != nil {
			t.Fatal(err)
		}
	}
	a0, a1 := l.PilotFor(0), l.PilotFor(1)
	if a0 == nil {
		t.Fatal("tenant 0 adapter never warmed")
	}
	if a0 == a1 {
		t.Fatal("cold tenant 1 must not share tenant 0's adapter")
	}
	if a1 != l.SharedPilot() {
		t.Fatal("cold tenant must fall back to the shared pilot")
	}
	if s := l.Stats(); s.AdapterTenants != 1 {
		t.Fatalf("AdapterTenants = %d, want 1", s.AdapterTenants)
	}
	// Out-of-range tenants degrade to the shared pilot rather than panic.
	if l.PilotFor(-1) != l.SharedPilot() || l.PilotFor(7) != l.SharedPilot() {
		t.Fatal("out-of-range tenant must use the shared pilot")
	}
}

// TestLearnerDeterministic pins the subsystem's contract: two learners fed
// the identical observation sequence end with bit-identical refined pilots.
func TestLearnerDeterministic(t *testing.T) {
	p, exs := testFixture(t)
	run := func() *pilot.Pilot {
		l, err := New(Config{
			Enabled: true, PerTenant: true, TrainingInterval: 3,
			MinibatchSize: 8, AdapterMinExamples: 4, Seed: 21,
		}, p, 2)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			if _, err := l.Observe(i%2, exs[i], i%3 == 0); err != nil {
				t.Fatal(err)
			}
		}
		return l.PilotFor(0)
	}
	a, b := run(), run()
	if a == nil || b == nil {
		t.Fatal("learning never produced a pilot")
	}
	for _, ex := range exs[100:140] {
		ra, err := a.Resolve(ex)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Resolve(ex)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ra.Output {
			if ra.Output[i] != rb.Output[i] {
				t.Fatalf("replayed learners diverged at output dim %d: %v vs %v",
					i, ra.Output[i], rb.Output[i])
			}
		}
		if ra.Path.Key != rb.Path.Key {
			t.Fatalf("replayed learners resolved different paths: %s vs %s",
				ra.Path.Key, rb.Path.Key)
		}
	}
}

func TestDisabledLearnerIsInert(t *testing.T) {
	p, exs := testFixture(t)
	l, err := New(Config{}, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	stall, err := l.Observe(0, exs[0], true)
	if err != nil || stall != 0 {
		t.Fatalf("disabled Observe = (%d, %v)", stall, err)
	}
	if l.Stats() != nil {
		t.Fatal("disabled learner must report nil stats")
	}
	if l.PilotFor(0) != nil {
		t.Fatal("disabled learner must defer to the engine pilot")
	}
	var nilL *Learner
	if nilL.Stats() != nil || nilL.PilotFor(0) != nil {
		t.Fatal("nil learner must be inert")
	}
	if stall, err := nilL.Observe(0, exs[0], true); err != nil || stall != 0 {
		t.Fatalf("nil Observe = (%d, %v)", stall, err)
	}
}
