// Package dynnoffload is the public API of the DyNN-Offload reproduction: a
// learning-based GPU memory-management system for training dynamic neural
// networks larger than GPU memory (HPCA 2024). It re-exports the pieces a
// downstream user composes:
//
//   - a model zoo of dynamic NNs (Tree-CNN, Tree-LSTM, var-BERT, var-LSTM,
//     MoE, UGAN, an AlphaFold-style evoformer) and synthetic sample streams;
//   - the pilot model: a small neural network that resolves a DyNN's
//     control flow per input sample and predicts its execution-block
//     partition;
//   - the DyNN-Offload runtime: double-buffered tensor prefetch over a
//     virtual-time GPU/PCIe simulator, with mis-prediction handling;
//   - the baselines the paper compares against: unmodified PyTorch-style
//     in-memory training, CUDA unified virtual memory (UVM), dynamic tensor
//     rematerialization (DTR), and ZeRO-Offload.
//
// Quick start (see examples/quickstart for a runnable version):
//
//	model := dynnoffload.NewTreeLSTM(dynnoffload.TreeLSTMConfig{
//		Levels: 6, Hidden: 256, SeqLen: 16, Batch: 8, Seed: 1,
//	})
//	sys, err := dynnoffload.NewSystem(dynnoffload.SystemConfig{
//		Model:    model,
//		Platform: dynnoffload.RTXPlatform().WithMemory(dynnoffload.GiB(1)),
//	})
//	...
//	report, err := sys.TrainEpoch(samples)
package dynnoffload

import (
	"fmt"

	"dynnoffload/internal/baselines"
	"dynnoffload/internal/core"
	"dynnoffload/internal/dynn"
	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/pilot"
	"dynnoffload/internal/sentinel"
	"dynnoffload/internal/trace"
)

// Re-exported model zoo types and constructors.
type (
	Model           = dynn.Model
	Sample          = dynn.Sample
	TreeCNNConfig   = dynn.TreeCNNConfig
	TreeLSTMConfig  = dynn.TreeLSTMConfig
	VarBERTConfig   = dynn.VarBERTConfig
	VarLSTMConfig   = dynn.VarLSTMConfig
	MoEConfig       = dynn.MoEConfig
	UGANConfig      = dynn.UGANConfig
	AlphaFoldConfig = dynn.AlphaFoldConfig
	ZooEntry        = dynn.ZooEntry
)

var (
	NewTreeCNN   = dynn.NewTreeCNN
	NewTreeLSTM  = dynn.NewTreeLSTM
	NewVarBERT   = dynn.NewVarBERT
	NewFixedBERT = dynn.NewFixedBERT
	NewVarLSTM   = dynn.NewVarLSTM
	NewFixedLSTM = dynn.NewFixedLSTM
	NewMoE       = dynn.NewMoE
	NewUGAN      = dynn.NewUGAN
	NewAlphaFold = dynn.NewAlphaFold

	Zoo             = dynn.Zoo
	ZooModel        = dynn.ZooModel
	GenerateSamples = dynn.GenerateSamples
	ParamCount      = dynn.ParamCount
	StateBytes      = dynn.StateBytes
)

// Re-exported hardware platform types and presets.
type (
	Platform   = gpusim.Platform
	DeviceSpec = gpusim.DeviceSpec
	Breakdown  = gpusim.Breakdown
)

var (
	RTXPlatform  = gpusim.RTXPlatform
	A100Platform = gpusim.A100Platform
	GiB          = gpusim.GiB
	MiB          = gpusim.MiB
)

// Re-exported pilot-model types.
type (
	PilotConfig  = pilot.Config
	Pilot        = pilot.Pilot
	PilotExample = pilot.Example
)

var (
	NewPilot           = pilot.New
	DefaultPilotConfig = pilot.DefaultConfig
)

// SystemConfig configures a DyNN-Offload training system for one model on
// one platform.
type SystemConfig struct {
	Model    dynn.Model
	Platform gpusim.Platform
	// Pilot optionally supplies a pre-trained pilot; when nil, TrainPilot
	// must be called before TrainEpoch.
	Pilot *pilot.Pilot
	// PilotConfig configures the pilot trained by TrainPilot.
	PilotConfig pilot.Config
}

// System couples a model context, a pilot model, and the DyNN-Offload
// runtime — the paper's Fig 2 architecture.
type System struct {
	cfg    SystemConfig
	ctx    *pilot.ModelContext
	pilot  *pilot.Pilot
	engine *core.Engine
}

// NewSystem builds the system: it enumerates the model's resolution paths,
// runs the Sentinel partitioner at the platform's double-buffer budget for
// every path (the offline labeling of §IV-D), and prepares the runtime.
func NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("dynnoffload: SystemConfig.Model is required")
	}
	cm := gpusim.NewCostModel(cfg.Platform)
	ctx, err := pilot.NewModelContext(cfg.Model, cm, cfg.Platform.GPU.MemBytes/2, cfg.PilotConfig.MaxBlocks)
	if err != nil {
		return nil, err
	}
	s := &System{cfg: cfg, ctx: ctx, pilot: cfg.Pilot}
	if s.pilot != nil {
		s.engine = core.NewEngine(core.DefaultConfig(cfg.Platform), s.pilot)
	}
	return s, nil
}

// Context exposes the model context (paths, labels, analyses).
func (s *System) Context() *pilot.ModelContext { return s.ctx }

// Examples encodes samples into pilot examples for this system's model.
func (s *System) Examples(samples []*dynn.Sample) ([]*pilot.Example, error) {
	return pilot.BuildExamples(s.ctx, s.cfg.PilotConfig.Features, samples)
}

// TrainPilot trains the pilot model offline on the given samples (§IV-D)
// and returns its held-out-free training summary.
func (s *System) TrainPilot(samples []*dynn.Sample) (pilot.TrainResult, error) {
	exs, err := s.Examples(samples)
	if err != nil {
		return pilot.TrainResult{}, err
	}
	s.pilot = pilot.New(s.cfg.PilotConfig)
	res := s.pilot.Train(exs)
	s.engine = core.NewEngine(core.DefaultConfig(s.cfg.Platform), s.pilot)
	return res, nil
}

// PilotAccuracy evaluates the pilot on samples, returning accuracy and the
// mis-prediction count.
func (s *System) PilotAccuracy(samples []*dynn.Sample) (float64, int, error) {
	if s.pilot == nil {
		return 0, 0, fmt.Errorf("dynnoffload: pilot not trained")
	}
	exs, err := s.Examples(samples)
	if err != nil {
		return 0, 0, err
	}
	acc, mis, _ := s.pilot.Evaluate(exs)
	return acc, mis, nil
}

// EpochReport is the result of a simulated training epoch.
type EpochReport = core.EpochReport

// TrainEpoch simulates DyNN-Offload training over the samples (one
// iteration each) and aggregates time, traffic, and mis-predictions.
func (s *System) TrainEpoch(samples []*dynn.Sample) (EpochReport, error) {
	if s.engine == nil {
		return EpochReport{}, fmt.Errorf("dynnoffload: pilot not trained (call TrainPilot)")
	}
	exs, err := s.Examples(samples)
	if err != nil {
		return EpochReport{}, err
	}
	return s.engine.RunEpoch(exs)
}

// BaselineSystem names a comparison system.
type BaselineSystem string

const (
	PyTorch     BaselineSystem = "pytorch"
	UVM         BaselineSystem = "uvm"
	DTR         BaselineSystem = "dtr"
	ZeROOffload BaselineSystem = "zero-offload"
)

// Baseline simulates one training iteration of the model's resolution path
// for the given sample under a baseline system.
func (s *System) Baseline(system BaselineSystem, sample *dynn.Sample) (gpusim.Breakdown, error) {
	r, err := s.cfg.Model.Resolve(sample)
	if err != nil {
		return gpusim.Breakdown{}, err
	}
	info := s.ctx.PathByKey(pilot.PathKey(r))
	if info == nil {
		return gpusim.Breakdown{}, fmt.Errorf("dynnoffload: unknown path")
	}
	switch system {
	case PyTorch:
		return baselines.PyTorch(info.Analysis, s.cfg.Platform)
	case UVM:
		return baselines.UVM(info.Analysis, s.cfg.Platform, baselines.DefaultUVMConfig())
	case DTR:
		return baselines.DTR(info.Analysis, s.cfg.Platform, baselines.DefaultDTRConfig())
	case ZeROOffload:
		eng := core.NewEngine(core.DefaultConfig(s.cfg.Platform), nil)
		return baselines.ZeRO(info.Analysis, s.cfg.Platform, s.cfg.Model.Dynamic(),
			baselines.DefaultZeROConfig(), eng.SimulatePartition)
	}
	return gpusim.Breakdown{}, fmt.Errorf("dynnoffload: unknown system %q", system)
}

// Trace produces the dynamic execution trace of a sample's full training
// iteration (forward + backward + optimizer), as cmd/tracegen writes to
// JSON.
func (s *System) Trace(sample *dynn.Sample) (*trace.Trace, error) {
	r, err := s.cfg.Model.Resolve(sample)
	if err != nil {
		return nil, err
	}
	info := s.ctx.PathByKey(pilot.PathKey(r))
	if info == nil {
		return nil, fmt.Errorf("dynnoffload: unknown path")
	}
	return info.Trace, nil
}

// Blocks returns the Sentinel execution-block partition for a sample's path.
func (s *System) Blocks(sample *dynn.Sample) ([]sentinel.Block, error) {
	r, err := s.cfg.Model.Resolve(sample)
	if err != nil {
		return nil, err
	}
	info := s.ctx.PathByKey(pilot.PathKey(r))
	if info == nil {
		return nil, fmt.Errorf("dynnoffload: unknown path")
	}
	return info.Blocks, nil
}
