// Package dynnoffload is the public API of the DyNN-Offload reproduction: a
// learning-based GPU memory-management system for training dynamic neural
// networks larger than GPU memory (HPCA 2024). It re-exports the pieces a
// downstream user composes:
//
//   - a model zoo of dynamic NNs (Tree-CNN, Tree-LSTM, var-BERT, var-LSTM,
//     MoE, UGAN, an AlphaFold-style evoformer) and synthetic sample streams;
//   - the pilot model: a small neural network that resolves a DyNN's
//     control flow per input sample and predicts its execution-block
//     partition;
//   - the DyNN-Offload runtime: double-buffered tensor prefetch over a
//     virtual-time GPU/PCIe simulator, with mis-prediction handling;
//   - the baselines the paper compares against: unmodified PyTorch-style
//     in-memory training, CUDA unified virtual memory (UVM), dynamic tensor
//     rematerialization (DTR), and ZeRO-Offload — all behind the Runner
//     interface.
//
// Quick start (see examples/quickstart for a runnable version):
//
//	model := dynnoffload.NewTreeLSTM(dynnoffload.TreeLSTMConfig{
//		Levels: 6, Hidden: 256, SeqLen: 16, Batch: 8, Seed: 1,
//	})
//	sys, err := dynnoffload.NewSystem(model,
//		dynnoffload.WithPlatform(dynnoffload.RTXPlatform().WithMemory(dynnoffload.GiB(1))),
//	)
//	...
//	report, err := sys.TrainEpoch(samples)
package dynnoffload

import (
	"errors"
	"fmt"
	"sync"

	"dynnoffload/internal/core"
	"dynnoffload/internal/dynn"
	"dynnoffload/internal/faults"
	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/obsv"
	"dynnoffload/internal/pilot"
	"dynnoffload/internal/sentinel"
	"dynnoffload/internal/trace"
)

// Typed sentinel errors. Callers match with errors.Is; the wrapped messages
// keep the human-readable detail.
var (
	// ErrPilotNotTrained: TrainEpoch/PilotAccuracy/the dynn-offload runner
	// need a trained pilot (supply one with WithPilot or call TrainPilot).
	ErrPilotNotTrained = core.ErrPilotNotTrained
	// ErrUnknownPath: a sample resolved to a path absent from the model
	// context.
	ErrUnknownPath = core.ErrUnknownPath
	// ErrCapacityExceeded: the path cannot run under the platform's memory.
	ErrCapacityExceeded = core.ErrCapacityExceeded
	// ErrUnknownRunner: the policy name is not in the runner registry.
	ErrUnknownRunner = errors.New("dynnoffload: unknown runner")
	// ErrModelRequired: NewSystem needs a non-nil model.
	ErrModelRequired = errors.New("dynnoffload: model is required")
)

// Re-exported model zoo types and constructors.
type (
	Model           = dynn.Model
	Sample          = dynn.Sample
	TreeCNNConfig   = dynn.TreeCNNConfig
	TreeLSTMConfig  = dynn.TreeLSTMConfig
	VarBERTConfig   = dynn.VarBERTConfig
	VarLSTMConfig   = dynn.VarLSTMConfig
	MoEConfig       = dynn.MoEConfig
	UGANConfig      = dynn.UGANConfig
	AlphaFoldConfig = dynn.AlphaFoldConfig
	ZooEntry        = dynn.ZooEntry
)

var (
	NewTreeCNN   = dynn.NewTreeCNN
	NewTreeLSTM  = dynn.NewTreeLSTM
	NewVarBERT   = dynn.NewVarBERT
	NewFixedBERT = dynn.NewFixedBERT
	NewVarLSTM   = dynn.NewVarLSTM
	NewFixedLSTM = dynn.NewFixedLSTM
	NewMoE       = dynn.NewMoE
	NewUGAN      = dynn.NewUGAN
	NewAlphaFold = dynn.NewAlphaFold

	Zoo             = dynn.Zoo
	ZooModel        = dynn.ZooModel
	GenerateSamples = dynn.GenerateSamples
	ParamCount      = dynn.ParamCount
	StateBytes      = dynn.StateBytes
)

// Re-exported hardware platform types and presets.
type (
	Platform   = gpusim.Platform
	DeviceSpec = gpusim.DeviceSpec
	Breakdown  = gpusim.Breakdown
)

var (
	RTXPlatform  = gpusim.RTXPlatform
	A100Platform = gpusim.A100Platform
	GiB          = gpusim.GiB
	MiB          = gpusim.MiB
)

// Re-exported pilot-model types. PilotEvalReport carries accuracy plus the
// per-path confusion summary (which truth paths the pilot mistakes for
// which), used by the online-sweep reporting and dynnserve tables.
type (
	PilotConfig       = pilot.Config
	Pilot             = pilot.Pilot
	PilotExample      = pilot.Example
	TrainResult       = pilot.TrainResult
	PilotEvalReport   = pilot.EvalReport
	PilotConfusedPair = pilot.ConfusedPair
)

var (
	NewPilot           = pilot.New
	DefaultPilotConfig = pilot.DefaultConfig
)

// SystemConfig is the resolved configuration a System runs under; NewSystem
// assembles it from functional options.
type SystemConfig struct {
	Model    dynn.Model
	Platform gpusim.Platform
	// Pilot optionally supplies a pre-trained pilot; when nil, TrainPilot
	// must be called before TrainEpoch.
	Pilot *pilot.Pilot
	// PilotConfig configures the pilot trained by TrainPilot.
	PilotConfig pilot.Config
	// Workers sizes TrainEpoch's worker pool: 0 runs serially, <0 uses
	// GOMAXPROCS. Epoch aggregates are identical at any setting.
	Workers int
	// Faults configures deterministic fault injection into the simulated
	// device (zero Rate disables it). The engine recovers via bounded
	// retries and the degradation ladder; epoch aggregates stay identical
	// to the fault-free run, only timing and traffic change.
	Faults FaultConfig
	// PressureFraction, when positive, caps the platform's GPU memory at
	// this fraction of the model's largest-path footprint (floored at the
	// double-buffer minimum), reproducing the paper's "model larger than
	// GPU memory" regime at any model scale.
	PressureFraction float64
}

// FaultConfig seeds the deterministic fault injector: Seed selects the fault
// schedule, Rate is the per-operation fault probability in [0,1], and
// StallFactor multiplies a stalled transfer's latency. Parse the CLI form
// "seed=N,rate=R[,stall=F]" with ParseFaultSpec.
type FaultConfig = faults.Config

// ParseFaultSpec parses "seed=N,rate=R[,stall=F]" into a FaultConfig (the
// format of dynnbench's -faults flag).
var ParseFaultSpec = faults.ParseSpec

// Option mutates a SystemConfig during NewSystem.
type Option func(*SystemConfig)

// WithPlatform selects the hardware platform (default: RTXPlatform).
func WithPlatform(p Platform) Option { return func(c *SystemConfig) { c.Platform = p } }

// WithPilotConfig configures the pilot trained by TrainPilot.
func WithPilotConfig(pc PilotConfig) Option { return func(c *SystemConfig) { c.PilotConfig = pc } }

// WithPilot supplies a pre-trained pilot so TrainPilot can be skipped.
func WithPilot(p *Pilot) Option { return func(c *SystemConfig) { c.Pilot = p } }

// WithWorkers sizes TrainEpoch's worker pool: 0 serial, <0 GOMAXPROCS.
func WithWorkers(n int) Option { return func(c *SystemConfig) { c.Workers = n } }

// WithFaultInjection enables deterministic fault injection at the given seed
// and rate. Same config, same model, same samples → same fault schedule and
// identical RunStats fault/retry counters, at any worker count.
func WithFaultInjection(fc FaultConfig) Option { return func(c *SystemConfig) { c.Faults = fc } }

// WithMemoryPressure caps the simulated GPU at a fraction of the model's
// largest-path memory footprint (never below what double-buffering the
// largest single operator needs), so offload traffic appears at any model
// scale. Composes with WithPlatform: the pressure applies to the chosen
// platform's GPU.
func WithMemoryPressure(fraction float64) Option {
	return func(c *SystemConfig) { c.PressureFraction = fraction }
}

// System couples a model context, a pilot model, and the DyNN-Offload
// runtime — the paper's Fig 2 architecture.
type System struct {
	cfg    SystemConfig
	ctx    *pilot.ModelContext
	pilot  *pilot.Pilot
	engine *core.Engine
	// plans is shared by every engine the system builds — the training
	// engine, each Serve call's engine, and every per-GPU cluster engine —
	// so resolved plans compile once per (path, capacity) system-wide.
	plans *core.PlanCache

	runnerMu sync.Mutex
	runners  map[string]Runner
}

// NewSystem builds the system for a model: it enumerates the model's
// resolution paths, runs the Sentinel partitioner at the platform's
// double-buffer budget for every path (the offline labeling of §IV-D), and
// prepares the runtime. Unset options default to the RTX platform and the
// zero-valued pilot config.
func NewSystem(model Model, opts ...Option) (*System, error) {
	cfg := SystemConfig{Model: model}
	for _, o := range opts {
		o(&cfg)
	}
	return newSystem(cfg)
}

func newSystem(cfg SystemConfig) (*System, error) {
	if cfg.Model == nil {
		return nil, ErrModelRequired
	}
	if cfg.Platform.GPU.MemBytes == 0 {
		cfg.Platform = RTXPlatform()
	}
	if cfg.PressureFraction > 0 {
		plat, err := pressurePlatform(cfg.Model, cfg.Platform, cfg.PressureFraction)
		if err != nil {
			return nil, err
		}
		cfg.Platform = plat
	}
	cm := gpusim.NewCostModel(cfg.Platform)
	ctx, err := pilot.NewModelContext(cfg.Model, cm, cfg.Platform.GPU.MemBytes/2, cfg.PilotConfig.MaxBlocks)
	if err != nil {
		return nil, err
	}
	s := &System{cfg: cfg, ctx: ctx, pilot: cfg.Pilot, plans: core.NewPlanCache()}
	if s.pilot != nil {
		s.engine = core.NewEngine(s.engineConfig(), s.pilot)
	}
	return s, nil
}

// pressurePlatform probes the model's paths at full memory and shrinks the
// GPU to fraction of the largest footprint, floored at the double-buffer
// minimum (9/4 of the largest single operator); host memory scales to hold
// the offloaded remainder.
func pressurePlatform(m dynn.Model, plat gpusim.Platform, fraction float64) (gpusim.Platform, error) {
	probe, err := pilot.NewModelContext(m, gpusim.NewCostModel(plat), 0, 0)
	if err != nil {
		return plat, err
	}
	var maxPeak, maxOp int64
	for _, info := range probe.Paths {
		if b := info.Analysis.PeakResidentBytes(); b > maxPeak {
			maxPeak = b
		}
		if b := info.Analysis.MaxSingleOpBytes(); b > maxOp {
			maxOp = b
		}
	}
	budget := int64(fraction * float64(maxPeak))
	if floor := 9 * maxOp / 4; budget < floor {
		budget = floor
	}
	if budget < 1<<20 {
		budget = 1 << 20
	}
	p := plat.WithMemory(budget)
	p.CPUMemBytes = 8 * maxPeak
	return p, nil
}

// Platform reports the resolved hardware platform the system simulates
// (after defaults and WithMemoryPressure).
func (s *System) Platform() Platform { return s.cfg.Platform }

// engineConfig derives the runtime config from the system config (platform
// defaults plus the fault injector when one is enabled).
func (s *System) engineConfig() core.Config {
	ecfg := core.DefaultConfig(s.cfg.Platform)
	ecfg.Plans = s.plans
	if s.cfg.Faults.Rate > 0 {
		ecfg.Faults = faults.New(s.cfg.Faults)
	}
	return ecfg
}

// Context exposes the model context (paths, labels, analyses).
func (s *System) Context() *pilot.ModelContext { return s.ctx }

// Examples encodes samples into pilot examples for this system's model.
func (s *System) Examples(samples []*dynn.Sample) ([]*pilot.Example, error) {
	return pilot.BuildExamples(s.ctx, s.cfg.PilotConfig.Features, samples)
}

// TrainPilot trains the pilot model offline on the given samples (§IV-D)
// and returns its held-out-free training summary.
func (s *System) TrainPilot(samples []*dynn.Sample) (pilot.TrainResult, error) {
	exs, err := s.Examples(samples)
	if err != nil {
		return pilot.TrainResult{}, err
	}
	s.pilot = pilot.New(s.cfg.PilotConfig)
	res := s.pilot.Train(exs)
	s.engine = core.NewEngine(s.engineConfig(), s.pilot)
	return res, nil
}

// PilotAccuracy evaluates the pilot on samples, returning accuracy and the
// mis-prediction count.
func (s *System) PilotAccuracy(samples []*dynn.Sample) (float64, int, error) {
	if s.pilot == nil {
		return 0, 0, fmt.Errorf("dynnoffload: %w", ErrPilotNotTrained)
	}
	exs, err := s.Examples(samples)
	if err != nil {
		return 0, 0, err
	}
	ev, err := s.pilot.Evaluate(exs)
	if err != nil {
		return 0, 0, fmt.Errorf("dynnoffload: %w", err)
	}
	return ev.Accuracy, ev.Mispredictions, nil
}

// PilotEval evaluates the pilot on samples and returns the full report:
// accuracy, mis-prediction count, mean inference latency, and the per-path
// confusion summary (which truth paths get mistaken for which, most frequent
// first — see PilotEvalReport.TopConfusions).
func (s *System) PilotEval(samples []*dynn.Sample) (PilotEvalReport, error) {
	if s.pilot == nil {
		return PilotEvalReport{}, fmt.Errorf("dynnoffload: %w", ErrPilotNotTrained)
	}
	exs, err := s.Examples(samples)
	if err != nil {
		return PilotEvalReport{}, err
	}
	ev, err := s.pilot.Evaluate(exs)
	if err != nil {
		return PilotEvalReport{}, fmt.Errorf("dynnoffload: %w", err)
	}
	return ev, nil
}

// EpochReport is the result of a simulated training epoch.
type EpochReport = core.EpochReport

// RunStats is the observability snapshot of one run (throughput, rates,
// per-phase latency histograms).
type RunStats = obsv.RunStats

// TrainEpoch simulates DyNN-Offload training over the samples (one
// iteration each) and aggregates time, traffic, and mis-predictions. With
// WithWorkers(n != 0) the epoch fans out across the parallel runtime;
// aggregates are identical to the serial run.
func (s *System) TrainEpoch(samples []*dynn.Sample) (EpochReport, error) {
	return s.TrainEpochStats(samples, nil)
}

// TrainEpochStats is TrainEpoch with an optional observability recorder
// (see internal/obsv via the RunStats alias); pass nil to skip recording.
func (s *System) TrainEpochStats(samples []*dynn.Sample, rec *obsv.Recorder) (EpochReport, error) {
	if s.engine == nil {
		return EpochReport{}, fmt.Errorf("dynnoffload: %w (call TrainPilot)", ErrPilotNotTrained)
	}
	exs, err := s.Examples(samples)
	if err != nil {
		return EpochReport{}, err
	}
	if s.cfg.Workers == 0 && rec == nil {
		return s.engine.RunEpoch(exs)
	}
	workers := s.cfg.Workers
	if workers == 0 {
		workers = 1
	}
	return s.engine.ParallelRunEpoch(exs, core.EpochOptions{Workers: workers, Recorder: rec})
}

// NewRecorder builds an observability recorder for one run; sink may be nil
// (counters only) or a JSONL sink from NewJSONLSink.
var (
	NewRecorder  = obsv.NewRecorder
	NewJSONLSink = obsv.NewJSONLSink
)

// CacheStats reports the runtime's mis-prediction cache counters; the zero
// value is returned before the pilot is trained.
func (s *System) CacheStats() core.CacheStats {
	if s.engine == nil {
		return core.CacheStats{}
	}
	return s.engine.CacheStats()
}

// Runner-registry names of the built-in memory-management policies. Resolve
// one with System.Runner; comparison loops range over RunnerNames().
const (
	PyTorch     = "pytorch"
	UVM         = "uvm"
	DTR         = "dtr"
	ZeROOffload = "zero-offload"
	// DyNNOffload is the paper's system itself, registered alongside the
	// baselines so comparison loops can range over every runner uniformly.
	DyNNOffload = "dynn-offload"
)

// Trace produces the dynamic execution trace of a sample's full training
// iteration (forward + backward + optimizer), as cmd/tracegen writes to
// JSON.
func (s *System) Trace(sample *dynn.Sample) (*trace.Trace, error) {
	r, err := s.cfg.Model.Resolve(sample)
	if err != nil {
		return nil, err
	}
	info := s.ctx.PathByKey(pilot.PathKey(r))
	if info == nil {
		return nil, fmt.Errorf("dynnoffload: %w", ErrUnknownPath)
	}
	return info.Trace, nil
}

// Blocks returns the Sentinel execution-block partition for a sample's path.
func (s *System) Blocks(sample *dynn.Sample) ([]sentinel.Block, error) {
	r, err := s.cfg.Model.Resolve(sample)
	if err != nil {
		return nil, err
	}
	info := s.ctx.PathByKey(pilot.PathKey(r))
	if info == nil {
		return nil, fmt.Errorf("dynnoffload: %w", ErrUnknownPath)
	}
	return info.Blocks, nil
}
