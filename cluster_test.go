package dynnoffload

import (
	"errors"
	"testing"
)

func clusterFixture(t *testing.T, opts ...ClusterOption) (*Cluster, []*Sample) {
	t.Helper()
	model := NewTreeLSTM(TreeLSTMConfig{Levels: 4, Hidden: 64, SeqLen: 8, Batch: 4, Seed: 1})
	copts := append([]ClusterOption{
		WithSystemOptions(
			WithPlatform(RTXPlatform().WithMemory(MiB(16))),
			WithPilotConfig(PilotConfig{Neurons: 48, Epochs: 6, Seed: 3}),
		),
	}, opts...)
	c, err := NewCluster(model, copts...)
	if err != nil {
		t.Fatal(err)
	}
	corpus := GenerateSamples(5, 460, 8, 32)
	if _, err := c.TrainPilot(corpus[:400]); err != nil {
		t.Fatal(err)
	}
	return c, corpus[400:]
}

// TestClusterFacadeTrainEpoch: the public cluster API runs a data-parallel
// epoch and its aggregates match the single-system epoch over the same
// samples (sharding only redistributes work).
func TestClusterFacadeTrainEpoch(t *testing.T) {
	c, samples := clusterFixture(t, WithGPUs(2))
	if c.GPUs() != 2 {
		t.Fatalf("GPUs() = %d", c.GPUs())
	}
	rep, err := c.TrainEpoch(samples)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GPUs != 2 || rep.Report.Samples != len(samples) {
		t.Fatalf("bad report shape: gpus=%d samples=%d", rep.GPUs, rep.Report.Samples)
	}
	if rep.MakespanNS <= 0 || rep.CommBytes <= 0 || rep.AllReduceNS < 0 {
		t.Errorf("bad cluster timing: makespan=%d comm=%d allreduce=%d",
			rep.MakespanNS, rep.CommBytes, rep.AllReduceNS)
	}
	if len(rep.Links) == 0 {
		t.Error("no link stats")
	}

	single, err := c.System().TrainEpoch(samples)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Report.Samples != single.Samples ||
		rep.Report.Breakdown.ComputeNS != single.Breakdown.ComputeNS {
		t.Errorf("cluster aggregates diverge from single-system epoch:\ncluster %+v\nsingle  %+v",
			rep.Report.Breakdown, single.Breakdown)
	}
}

// TestClusterFacadeServe: cluster serving through the facade conserves
// requests and reports per-replica outcomes.
func TestClusterFacadeServe(t *testing.T) {
	c, pool := clusterFixture(t, WithGPUs(2))
	rep, err := c.Serve(pool, ClusterConfig{
		Config: ServeConfig{
			Tenants: []ServeTenant{
				{Name: "a", Requests: 24, RatePerSec: 500, Seed: 7, SLONS: 1e9},
				{Name: "b", Requests: 24, RatePerSec: 500, Seed: 8, SLONS: 1e9},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Total.Completed + rep.Total.Shed + rep.Total.QuotaShed; got != rep.Total.Arrivals {
		t.Errorf("request conservation: %d + %d + %d != %d",
			rep.Total.Completed, rep.Total.Shed, rep.Total.QuotaShed, rep.Total.Arrivals)
	}
	if len(rep.Replicas) != 2 || len(rep.Placements) != 2 {
		t.Fatalf("bad cluster report shape: %d replicas, %d placements",
			len(rep.Replicas), len(rep.Placements))
	}
	var done int64
	for _, rs := range rep.Replicas {
		done += rs.Completed
	}
	if done != rep.Total.Completed {
		t.Errorf("replica completions %d != total %d", done, rep.Total.Completed)
	}
}

// TestClusterFacadeErrors: configuration mistakes surface as ErrBadCluster /
// ErrPilotNotTrained, before any simulation runs.
func TestClusterFacadeErrors(t *testing.T) {
	model := NewTreeLSTM(TreeLSTMConfig{Levels: 4, Hidden: 64, SeqLen: 8, Batch: 4, Seed: 1})
	if _, err := NewCluster(model, WithGPUs(0)); !errors.Is(err, ErrBadCluster) {
		t.Errorf("WithGPUs(0): err = %v, want ErrBadCluster", err)
	}
	if _, err := NewCluster(nil); !errors.Is(err, ErrModelRequired) {
		t.Errorf("NewCluster(nil): err = %v, want ErrModelRequired", err)
	}
	sys, err := NewSystem(model)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Cluster(WithSystemOptions(WithWorkers(2))); !errors.Is(err, ErrBadCluster) {
		t.Errorf("System.Cluster(WithSystemOptions): err = %v, want ErrBadCluster", err)
	}
	c, err := sys.Cluster(WithGPUs(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.TrainEpoch(GenerateSamples(1, 2, 8, 16)); !errors.Is(err, ErrPilotNotTrained) {
		t.Errorf("TrainEpoch before pilot: err = %v, want ErrPilotNotTrained", err)
	}
	if _, err := c.Serve(GenerateSamples(1, 2, 8, 16), ClusterConfig{
		Config: ServeConfig{Tenants: []ServeTenant{{Name: "a", Requests: 1, RatePerSec: 1}}},
	}); !errors.Is(err, ErrPilotNotTrained) {
		t.Errorf("Serve before pilot: err = %v, want ErrPilotNotTrained", err)
	}
	trained, pool := clusterFixture(t, WithGPUs(2))
	if _, err := trained.Serve(pool, ClusterConfig{
		Replicas: 3,
		Config:   ServeConfig{Tenants: []ServeTenant{{Name: "a", Requests: 1, RatePerSec: 1}}},
	}); !errors.Is(err, ErrBadCluster) {
		t.Errorf("replica mismatch: err = %v, want ErrBadCluster", err)
	}
}

// TestWithMemoryPressure: the option shrinks the simulated GPU below the
// model's footprint so offload traffic appears, and the resolved platform is
// visible through System.Platform.
func TestWithMemoryPressure(t *testing.T) {
	model := NewTreeCNN(TreeCNNConfig{Levels: 5, Channels: 24, Batch: 12, Seed: 42})
	full := RTXPlatform()
	sys, err := NewSystem(model, WithPlatform(full), WithMemoryPressure(0.5))
	if err != nil {
		t.Fatal(err)
	}
	got := sys.Platform().GPU.MemBytes
	if got >= full.GPU.MemBytes || got <= 0 {
		t.Errorf("pressure did not shrink the GPU: %d vs %d", got, full.GPU.MemBytes)
	}
	if sys.Platform().CPUMemBytes <= got {
		t.Errorf("host memory %d does not cover offload from %d", sys.Platform().CPUMemBytes, got)
	}
}

// TestClusterRingOracle: the facade-level closed form matches the paper's
// 2(g-1)/g volume formula (the DES-vs-oracle property lives in
// internal/distributed's tests).
func TestClusterRingOracle(t *testing.T) {
	link := LinkSpec{BW: 1 << 30, LatencyNS: 1000}
	if got := RingAllReduceNS(link, 1<<30, 1); got != 0 {
		t.Errorf("1 GPU ring = %d, want 0", got)
	}
	got := RingAllReduceNS(link, 1<<30, 4)
	want := int64(1.5*1e9) + 6*1000
	if got != want {
		t.Errorf("RingAllReduceNS = %d, want %d", got, want)
	}
}
