package dynnoffload

import (
	"errors"
	"reflect"
	"testing"
)

// TestSystemServe exercises the public serving flow: train a pilot, offer two
// tenant streams against the sample pool, and check the report's accounting
// and its replay determinism across worker counts.
func TestSystemServe(t *testing.T) {
	model := NewTreeLSTM(TreeLSTMConfig{Levels: 4, Hidden: 64, SeqLen: 8, Batch: 4, Seed: 1})
	plat := RTXPlatform().WithMemory(MiB(16))
	sys, err := NewSystem(model,
		WithPlatform(plat),
		WithPilotConfig(PilotConfig{Neurons: 48, Epochs: 6, Seed: 3}),
	)
	if err != nil {
		t.Fatal(err)
	}
	corpus := GenerateSamples(5, 500, 8, 32)
	if _, err := sys.TrainPilot(corpus[:400]); err != nil {
		t.Fatal(err)
	}

	cfg := ServeConfig{
		Tenants: []ServeTenant{
			{Name: "alpha", Requests: 30, RatePerSec: 3000, Seed: 11, QuotaBytes: plat.GPU.MemBytes / 2, SLONS: 5e7},
			{Name: "beta", Requests: 30, RatePerSec: 3000, Seed: 23, QuotaBytes: plat.GPU.MemBytes / 2, SLONS: 5e7},
		},
	}
	run := func(workers int) *ServeReport {
		c := cfg
		c.Workers = workers
		rep, err := sys.Serve(corpus[400:], c)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rep := run(1)
	if got := rep.Total.Completed + rep.Total.Shed + rep.Total.QuotaShed; got != rep.Total.Arrivals || rep.Total.Arrivals != 60 {
		t.Errorf("request conservation broken: %+v", rep.Total)
	}
	if rep.Total.Completed == 0 || rep.MakespanNS <= 0 {
		t.Errorf("nothing served: %+v", rep.Total)
	}
	if len(rep.Tenants) != 2 || rep.Tenants[0].Name != "alpha" {
		t.Errorf("tenant reports wrong: %+v", rep.Tenants)
	}
	if again := run(4); !reflect.DeepEqual(rep, again) {
		t.Errorf("serving replay diverged across worker counts:\nwant %+v\ngot  %+v", rep, again)
	}

	// Serving must not touch the training engine's cache state.
	if s := sys.CacheStats(); s.Hits != 0 || s.Inserts != 0 {
		t.Errorf("serving leaked into the training engine cache: %+v", s)
	}
}

func TestSystemServeNeedsPilot(t *testing.T) {
	model := NewTreeLSTM(TreeLSTMConfig{Levels: 3, Hidden: 32, SeqLen: 8, Batch: 2, Seed: 1})
	sys, err := NewSystem(model, WithPlatform(RTXPlatform().WithMemory(MiB(16))))
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.Serve(GenerateSamples(2, 10, 8, 16), ServeConfig{Tenants: []ServeTenant{{Name: "a", Requests: 1, RatePerSec: 1}}})
	if !errors.Is(err, ErrPilotNotTrained) {
		t.Errorf("err = %v, want ErrPilotNotTrained", err)
	}
}
