module dynnoffload

go 1.22
