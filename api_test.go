package dynnoffload

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// TestPublicAPIQuickstart exercises the documented quick-start flow.
func TestPublicAPIQuickstart(t *testing.T) {
	model := NewTreeLSTM(TreeLSTMConfig{Levels: 4, Hidden: 64, SeqLen: 8, Batch: 4, Seed: 1})
	plat := RTXPlatform().WithMemory(MiB(16))

	sys, err := NewSystem(model,
		WithPlatform(plat),
		WithPilotConfig(PilotConfig{Neurons: 48, Epochs: 6, Seed: 3}),
	)
	if err != nil {
		t.Fatal(err)
	}
	corpus := GenerateSamples(5, 500, 8, 32)
	if _, err := sys.TrainPilot(corpus[:400]); err != nil {
		t.Fatal(err)
	}
	acc, mis, err := sys.PilotAccuracy(corpus[400:450])
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0 || acc > 1 || mis < 0 {
		t.Errorf("bad accuracy report: %v %d", acc, mis)
	}
	rep, err := sys.TrainEpoch(corpus[450:])
	if err != nil {
		t.Fatal(err)
	}
	if rep.Samples != 50 || rep.Breakdown.TotalNS() <= 0 {
		t.Errorf("bad epoch report: %+v", rep)
	}

	// Baselines run on the same system through the runner registry.
	sample := corpus[499]
	sampleExs, err := sys.Examples(corpus[499:])
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{PyTorch, UVM, DTR} {
		r, err := sys.Runner(name)
		if err != nil {
			t.Fatalf("Runner(%q): %v", name, err)
		}
		if _, err := r.RunIteration(sampleExs[0]); err != nil {
			t.Logf("%s: %v (infeasibility is a valid outcome)", name, err)
		}
	}
	if _, err := sys.Runner("nope"); !errors.Is(err, ErrUnknownRunner) {
		t.Errorf("unknown system: err = %v, want ErrUnknownRunner", err)
	}

	tr, err := sys.Trace(sample)
	if err != nil || len(tr.Records) == 0 {
		t.Fatalf("Trace: %v", err)
	}
	blocks, err := sys.Blocks(sample)
	if err != nil || len(blocks) == 0 {
		t.Fatalf("Blocks: %v", err)
	}
}

// TestRunnerInterface: every registered policy runs through the uniform
// Runner interface, and the registry covers the paper's systems.
func TestRunnerInterface(t *testing.T) {
	model := NewTreeLSTM(TreeLSTMConfig{Levels: 4, Hidden: 64, SeqLen: 8, Batch: 4, Seed: 1})
	sys, err := NewSystem(model,
		WithPlatform(RTXPlatform().WithMemory(MiB(16))),
		WithPilotConfig(PilotConfig{Neurons: 48, Epochs: 6, Seed: 3}),
	)
	if err != nil {
		t.Fatal(err)
	}
	corpus := GenerateSamples(9, 220, 8, 32)
	if _, err := sys.TrainPilot(corpus[:200]); err != nil {
		t.Fatal(err)
	}
	exs, err := sys.Examples(corpus[200:])
	if err != nil {
		t.Fatal(err)
	}

	names := RunnerNames()
	joined := strings.Join(names, ",")
	for _, want := range []string{"dynn-offload", "pytorch", "uvm", "dtr", "zero-offload"} {
		if !strings.Contains(joined, want) {
			t.Errorf("registry missing %q: %v", want, names)
		}
	}
	for _, name := range names {
		r, err := sys.Runner(name)
		if err != nil {
			t.Fatalf("Runner(%q): %v", name, err)
		}
		if r.Name() != name {
			t.Errorf("Name() = %q, want %q", r.Name(), name)
		}
		bd, err := r.RunIteration(exs[0])
		if err != nil {
			t.Logf("%s: %v (infeasibility is a valid outcome)", name, err)
			continue
		}
		if bd.TotalNS() <= 0 {
			t.Errorf("%s: zero simulated time", name)
		}
	}

	// Memoization: same runner instance per system.
	a, _ := sys.Runner("pytorch")
	b, _ := sys.Runner("pytorch")
	if a != b {
		t.Error("Runner not memoized per system")
	}
}

// TestRunnerRegistration: downstream policies plug into the registry and
// resolve through System.Runner like the built-ins.
func TestRunnerRegistration(t *testing.T) {
	RegisterRunner("test-noop", func(s *System) (Runner, error) {
		return &noopRunner{}, nil
	})
	model := NewVarLSTM(VarLSTMConfig{Hidden: 16, Batch: 1, Seed: 1})
	sys, err := NewSystem(model)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sys.Runner("test-noop")
	if err != nil {
		t.Fatal(err)
	}
	exs, err := sys.Examples(GenerateSamples(1, 1, 8, 16))
	if err != nil {
		t.Fatal(err)
	}
	bd, err := r.RunIteration(exs[0])
	if err != nil {
		t.Fatal(err)
	}
	if bd.ComputeNS != 42 {
		t.Errorf("custom runner not used: %+v", bd)
	}
}

type noopRunner struct{}

func (noopRunner) Name() string { return "test-noop" }
func (noopRunner) RunIteration(*PilotExample) (Breakdown, error) {
	return Breakdown{ComputeNS: 42}, nil
}

// TestSentinelErrors: failures surface as typed errors callers can match.
func TestSentinelErrors(t *testing.T) {
	model := NewVarLSTM(VarLSTMConfig{Hidden: 16, Batch: 1, Seed: 1})
	sys, err := NewSystem(model, WithPlatform(RTXPlatform()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.TrainEpoch(GenerateSamples(1, 2, 8, 16)); !errors.Is(err, ErrPilotNotTrained) {
		t.Errorf("TrainEpoch err = %v, want ErrPilotNotTrained", err)
	}
	if _, _, err := sys.PilotAccuracy(GenerateSamples(1, 2, 8, 16)); !errors.Is(err, ErrPilotNotTrained) {
		t.Errorf("PilotAccuracy err = %v, want ErrPilotNotTrained", err)
	}
	if r, err := sys.Runner(DyNNOffload); err != nil {
		t.Fatal(err)
	} else {
		exs, err := sys.Examples(GenerateSamples(1, 1, 8, 16))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.RunIteration(exs[0]); !errors.Is(err, ErrPilotNotTrained) {
			t.Errorf("offload runner err = %v, want ErrPilotNotTrained", err)
		}
	}
	if _, err := NewSystem(nil); !errors.Is(err, ErrModelRequired) {
		t.Errorf("NewSystem(nil) err = %v, want ErrModelRequired", err)
	}
	if _, err := sys.Runner("no-such-policy"); !errors.Is(err, ErrUnknownRunner) {
		t.Errorf("Runner err = %v, want ErrUnknownRunner", err)
	}
}

// TestSystemDefaults: an unset platform defaults to RTX.
func TestSystemDefaults(t *testing.T) {
	model := NewVarLSTM(VarLSTMConfig{Hidden: 16, Batch: 1, Seed: 1})
	sys, err := NewSystem(model)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Context() == nil {
		t.Error("no model context")
	}
	if sys.cfg.Platform.GPU.MemBytes != RTXPlatform().GPU.MemBytes {
		t.Errorf("default platform = %+v", sys.cfg.Platform.GPU)
	}
}

// TestParallelTrainEpoch: WithWorkers fans the public epoch API out across
// the parallel runtime with identical aggregates, and the observability
// surface emits valid JSONL.
func TestParallelTrainEpoch(t *testing.T) {
	model := NewTreeLSTM(TreeLSTMConfig{Levels: 4, Hidden: 64, SeqLen: 8, Batch: 4, Seed: 1})
	build := func(workers int) *System {
		sys, err := NewSystem(model,
			WithPlatform(RTXPlatform().WithMemory(MiB(16))),
			WithPilotConfig(PilotConfig{Neurons: 48, Epochs: 6, Seed: 3}),
			WithWorkers(workers),
		)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	corpus := GenerateSamples(5, 460, 8, 32)

	serial := build(0)
	if _, err := serial.TrainPilot(corpus[:400]); err != nil {
		t.Fatal(err)
	}
	want, err := serial.TrainEpoch(corpus[400:])
	if err != nil {
		t.Fatal(err)
	}

	par := build(4)
	if _, err := par.TrainPilot(corpus[:400]); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec := NewRecorder("api-test", 4, NewJSONLSink(&buf))
	got, err := par.TrainEpochStats(corpus[400:], rec)
	if err != nil {
		t.Fatal(err)
	}
	stats := rec.Finish()

	if got.Samples != want.Samples || got.Mispredictions != want.Mispredictions ||
		got.CacheHits != want.CacheHits ||
		got.Breakdown.ComputeNS != want.Breakdown.ComputeNS ||
		got.Breakdown.H2DBytes != want.Breakdown.H2DBytes {
		t.Errorf("parallel epoch diverges:\ngot  %+v\nwant %+v", got, want)
	}
	if stats.Samples != int64(got.Samples) || stats.SamplesPerSec <= 0 {
		t.Errorf("bad run stats: %+v", stats)
	}
	if cs := par.CacheStats(); cs.Hits != int64(got.CacheHits) {
		t.Errorf("cache stats inconsistent: %+v vs report %+v", cs, got)
	}
	for _, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		var ev map[string]any
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("invalid JSONL event %q: %v", line, err)
		}
	}
}

func TestZooRoundTrip(t *testing.T) {
	if len(Zoo()) != 9 {
		t.Errorf("zoo size %d", len(Zoo()))
	}
	m, err := ZooModel("AlphaFold", 1, 1)
	if err != nil || m.Name() != "AlphaFold" {
		t.Fatalf("ZooModel: %v", err)
	}
}
