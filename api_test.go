package dynnoffload

import (
	"testing"
)

// TestPublicAPIQuickstart exercises the documented quick-start flow.
func TestPublicAPIQuickstart(t *testing.T) {
	model := NewTreeLSTM(TreeLSTMConfig{Levels: 4, Hidden: 64, SeqLen: 8, Batch: 4, Seed: 1})
	plat := RTXPlatform().WithMemory(MiB(16))

	sys, err := NewSystem(SystemConfig{
		Model:       model,
		Platform:    plat,
		PilotConfig: PilotConfig{Neurons: 48, Epochs: 6, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	corpus := GenerateSamples(5, 500, 8, 32)
	if _, err := sys.TrainPilot(corpus[:400]); err != nil {
		t.Fatal(err)
	}
	acc, mis, err := sys.PilotAccuracy(corpus[400:450])
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0 || acc > 1 || mis < 0 {
		t.Errorf("bad accuracy report: %v %d", acc, mis)
	}
	rep, err := sys.TrainEpoch(corpus[450:])
	if err != nil {
		t.Fatal(err)
	}
	if rep.Samples != 50 || rep.Breakdown.TotalNS() <= 0 {
		t.Errorf("bad epoch report: %+v", rep)
	}

	// Baselines run on the same system.
	sample := corpus[499]
	for _, system := range []BaselineSystem{PyTorch, UVM, DTR} {
		if _, err := sys.Baseline(system, sample); err != nil {
			t.Logf("%s: %v (infeasibility is a valid outcome)", system, err)
		}
	}
	if _, err := sys.Baseline("nope", sample); err == nil {
		t.Error("unknown system must error")
	}

	tr, err := sys.Trace(sample)
	if err != nil || len(tr.Records) == 0 {
		t.Fatalf("Trace: %v", err)
	}
	blocks, err := sys.Blocks(sample)
	if err != nil || len(blocks) == 0 {
		t.Fatalf("Blocks: %v", err)
	}
}

func TestTrainEpochRequiresPilot(t *testing.T) {
	model := NewVarLSTM(VarLSTMConfig{Hidden: 16, Batch: 1, Seed: 1})
	sys, err := NewSystem(SystemConfig{Model: model, Platform: RTXPlatform()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.TrainEpoch(GenerateSamples(1, 2, 8, 16)); err == nil {
		t.Error("TrainEpoch without a pilot must error")
	}
}

func TestNewSystemRequiresModel(t *testing.T) {
	if _, err := NewSystem(SystemConfig{Platform: RTXPlatform()}); err == nil {
		t.Error("nil model must error")
	}
}

func TestZooRoundTrip(t *testing.T) {
	if len(Zoo()) != 9 {
		t.Errorf("zoo size %d", len(Zoo()))
	}
	m, err := ZooModel("AlphaFold", 1, 1)
	if err != nil || m.Name() != "AlphaFold" {
		t.Fatalf("ZooModel: %v", err)
	}
}
