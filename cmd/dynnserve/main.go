// Command dynnserve plays a multi-tenant serving workload against a cluster
// of simulated GPU replicas on one virtual clock: seeded arrival streams,
// per-tenant GPU-memory quotas with load shedding, SLO-aware continuous
// batching, home-affinity placement with least-loaded spill, and optional
// elastic replica scaling. Identical flags replay bit-identical results at
// any -workers value.
//
// Usage:
//
//	dynnserve -model Tree-LSTM
//	dynnserve -model Tree-LSTM -gpus 4
//	dynnserve -model Tree-LSTM -gpus 4 -minreplicas 1 -scaleup 100us -scaledown 5ms
//	dynnserve -model MoE -tenants "prio:rate=40,requests=200,slo=2s,quota=0.5;batch:rate=10,requests=50"
//	dynnserve -model Tree-LSTM -trace serve.json -serve :8080
//
// The binary goes through the public dynnoffload facade only — it is the
// reference for driving the cluster API from downstream code.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"dynnoffload"
)

func main() {
	var (
		model   = flag.String("model", "Tree-LSTM", "zoo model to serve")
		tenants = flag.String("tenants",
			"alpha:rate=2000,requests=120,slo=50ms,quota=0.5;beta:rate=2000,requests=120,slo=50ms,quota=0.5",
			"tenant specs, ';'-separated: name:rate=R[,requests=N][,slo=DUR][,quota=FRACTION][,maxqueue=Q][,seed=S]")
		gpus      = flag.Int("gpus", 1, "GPU replica count")
		minRep    = flag.Int("minreplicas", 0, "elastic floor (with -scaleup; 0 = 1)")
		scaleUp   = flag.Duration("scaleup", 0, "enable elastic scaling: windowed mean queue wait that activates one more replica")
		scaleDown = flag.Duration("scaledown", 0, "idle time after which an active replica beyond the floor retires")
		maxBatch  = flag.Int("maxbatch", 0, "continuous-batch size bound (0 = default)")
		starve    = flag.Duration("starve", 0, "starvation guard age (0 = derive from SLOs, negative = off)")
		onDemand  = flag.Bool("ondemand", false, "force the always-on-demand baseline engines")
		pressure  = flag.Float64("pressure", 0.5, "GPU memory as a fraction of the model's footprint")
		train     = flag.Int("train", 1500, "pilot-training samples")
		test      = flag.Int("test", 400, "request-pool samples")
		neurons   = flag.Int("neurons", 128, "pilot hidden width")
		epochs    = flag.Int("epochs", 12, "pilot training epochs")
		batch     = flag.Int("batch", 48, "DyNN batch size")
		seed      = flag.Uint64("seed", 42, "base seed (tenant seeds derive from it)")
		workers   = flag.Int("workers", 0, "engine fan-out per dispatched batch (0 = GOMAXPROCS)")
		faultSpec = flag.String("faults", "", "deterministic fault injection, e.g. seed=7,rate=0.05[,stall=4]")
		online    = flag.Bool("online", false, "enable online pilot learning from serving traffic (replay memory + in-loop retraining + per-tenant adapters)")
		interval  = flag.Int("interval", 0, "online retrain interval in completed requests (0 = default)")
		memSize   = flag.Int("memsize", 0, "online replay-memory capacity (0 = default)")
		trajFile  = flag.String("trajectory", "", "write the online mispredict-rate trajectory as JSONL (requires -online)")
		traceFile = flag.String("trace", "", "write the serving trace (queue + device spans) as Chrome Trace Event JSON")
		flight    = flag.String("flight", "", "enable the flight recorder and write each snapshot to PREFIX-r<replica>-<reason>.jsonl")
		addr      = flag.String("serve", "", "serve live Prometheus metrics and pprof on this address, then block")
	)
	flag.Parse()
	if err := run(*model, *tenants, settings{
		gpus: *gpus, minReplicas: *minRep, scaleUpNS: int64(*scaleUp), scaleDownNS: int64(*scaleDown),
		maxBatch: *maxBatch, starveNS: int64(*starve), onDemand: *onDemand, pressure: *pressure,
		train: *train, test: *test, neurons: *neurons, epochs: *epochs, batch: *batch,
		seed: *seed, workers: *workers, faultSpec: *faultSpec, traceFile: *traceFile,
		flightPrefix: *flight, addr: *addr,
		online: *online, interval: *interval, memSize: *memSize, trajFile: *trajFile,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "dynnserve:", err)
		os.Exit(1)
	}
}

type settings struct {
	gpus, minReplicas      int
	scaleUpNS, scaleDownNS int64
	maxBatch               int
	starveNS               int64
	onDemand               bool
	pressure               float64
	train, test            int
	neurons, epochs, batch int
	seed                   uint64
	workers                int
	faultSpec              string
	traceFile              string
	flightPrefix           string
	addr                   string
	online                 bool
	interval, memSize      int
	trajFile               string
}

func run(model, tenantSpec string, st settings) error {
	m, err := dynnoffload.ZooModel(model, st.batch, st.seed)
	if err != nil {
		return err
	}
	plat := dynnoffload.RTXPlatform()
	switch model {
	case "var-BERT", "fixed-BERT", "AlphaFold":
		plat = dynnoffload.A100Platform() // the paper deploys these on A100
	}
	sysOpts := []dynnoffload.Option{
		dynnoffload.WithPlatform(plat),
		dynnoffload.WithMemoryPressure(st.pressure),
		dynnoffload.WithPilotConfig(dynnoffload.PilotConfig{
			Neurons: st.neurons, Epochs: st.epochs, Seed: st.seed,
		}),
		dynnoffload.WithWorkers(st.workers),
	}
	if st.faultSpec != "" {
		fc, err := dynnoffload.ParseFaultSpec(st.faultSpec)
		if err != nil {
			return err
		}
		sysOpts = append(sysOpts, dynnoffload.WithFaultInjection(fc))
	}
	copts := []dynnoffload.ClusterOption{
		dynnoffload.WithGPUs(st.gpus),
		dynnoffload.WithSystemOptions(sysOpts...),
	}
	if st.onDemand {
		copts = append(copts, dynnoffload.WithOnDemandServing())
	}
	if st.online {
		copts = append(copts, dynnoffload.WithOnlineLearning(dynnoffload.OnlineConfig{
			TrainingInterval: st.interval,
			MemorySize:       st.memSize,
			PerTenant:        true,
			Seed:             st.seed,
		}))
	} else if st.trajFile != "" {
		return errors.New("-trajectory requires -online")
	}
	var tracer *dynnoffload.Tracer
	if st.traceFile != "" {
		tracer = dynnoffload.NewTracer(dynnoffload.WithAbsoluteTime())
		copts = append(copts, dynnoffload.WithClusterTracer(tracer))
	}

	fmt.Printf("building %s cluster (%d GPUs) + pilot...\n", model, st.gpus)
	c, err := dynnoffload.NewCluster(m, copts...)
	if err != nil {
		return err
	}
	corpus := dynnoffload.GenerateSamples(st.seed, st.train+st.test, 8, 48)
	if _, err := c.TrainPilot(corpus[:st.train]); err != nil {
		return err
	}

	gpuMem := c.System().Platform().GPU.MemBytes
	tcs, err := parseTenants(tenantSpec, gpuMem, st.seed)
	if err != nil {
		return err
	}
	cfg := dynnoffload.ClusterConfig{
		Config: dynnoffload.ServeConfig{
			Tenants:         tcs,
			MaxBatch:        st.maxBatch,
			StarvationAgeNS: st.starveNS,
			Workers:         st.workers,
		},
		MinReplicas:     st.minReplicas,
		ScaleUpQueueNS:  st.scaleUpNS,
		ScaleDownIdleNS: st.scaleDownNS,
	}
	if st.flightPrefix != "" {
		cfg.Flight = dynnoffload.FlightConfig{Events: dynnoffload.DefaultFlightEvents}
	}
	var reg *dynnoffload.MetricsRegistry
	if st.addr != "" {
		reg = dynnoffload.NewMetricsRegistry()
		cfg.Registry = reg
		go func() {
			if err := http.ListenAndServe(st.addr, dynnoffload.NewMetricsMux(reg)); err != nil {
				fmt.Fprintln(os.Stderr, "dynnserve: serve:", err)
				os.Exit(1)
			}
		}()
		fmt.Printf("serving /metrics and /debug/pprof on %s\n", st.addr)
	}

	rep, err := c.Serve(corpus[st.train:], cfg)
	if err != nil {
		// A run that aborted on engine capacity still leaves its flight
		// recordings — dump them so the post-mortem has something to read.
		var fe *dynnoffload.ServeFlightError
		if errors.As(err, &fe) && st.flightPrefix != "" {
			if werr := writeFlights(st.flightPrefix, fe.Flights); werr != nil {
				fmt.Fprintln(os.Stderr, "dynnserve: flight dump:", werr)
			}
		}
		return err
	}
	report(os.Stdout, model, rep)
	if st.online {
		onlineReport(os.Stdout, rep)
		ev, err := c.System().PilotEval(corpus[st.train:])
		if err != nil {
			return err
		}
		confusionReport(os.Stdout, ev)
		if st.trajFile != "" {
			if err := writeTrajectory(st.trajFile, rep.Total.Online); err != nil {
				return err
			}
		}
	}

	if st.flightPrefix != "" {
		if err := writeFlights(st.flightPrefix, rep.Flights); err != nil {
			return err
		}
	}
	if st.traceFile != "" {
		if err := writeTrace(st.traceFile, model, plat.Link.BW, tracer); err != nil {
			return err
		}
	}
	if st.addr != "" {
		fmt.Printf("done; still serving on %s (interrupt to exit)\n", st.addr)
		select {}
	}
	return nil
}

// parseTenants parses the ';'-separated tenant spec list. Quotas are device
// fractions; unset seeds derive from the base seed and the tenant's position.
func parseTenants(spec string, gpuMem int64, baseSeed uint64) ([]dynnoffload.ServeTenant, error) {
	var tcs []dynnoffload.ServeTenant
	for i, one := range strings.Split(spec, ";") {
		one = strings.TrimSpace(one)
		if one == "" {
			continue
		}
		name, kvs, ok := strings.Cut(one, ":")
		if !ok || name == "" {
			return nil, fmt.Errorf("tenant spec %q: want name:key=value,...", one)
		}
		tc := dynnoffload.ServeTenant{Name: name, Requests: 100, Seed: baseSeed + uint64(i+1)*7919}
		for _, kv := range strings.Split(kvs, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("tenant %q: bad pair %q", name, kv)
			}
			var err error
			switch k {
			case "rate":
				tc.RatePerSec, err = strconv.ParseFloat(v, 64)
			case "requests":
				tc.Requests, err = strconv.Atoi(v)
			case "slo":
				var d time.Duration
				d, err = time.ParseDuration(v)
				tc.SLONS = int64(d)
			case "quota":
				var f float64
				f, err = strconv.ParseFloat(v, 64)
				tc.QuotaBytes = int64(f * float64(gpuMem))
			case "maxqueue":
				tc.MaxQueue, err = strconv.Atoi(v)
			case "seed":
				tc.Seed, err = strconv.ParseUint(v, 10, 64)
			default:
				err = fmt.Errorf("unknown key %q", k)
			}
			if err != nil {
				return nil, fmt.Errorf("tenant %q: %s: %v", name, kv, err)
			}
		}
		tcs = append(tcs, tc)
	}
	return tcs, nil
}

// table is a minimal aligned-column printer (the bench harness has a richer
// one; this binary stays facade-only).
type table struct {
	title  string
	header []string
	rows   [][]string
	notes  []string
}

func (t *table) print(out *os.File) {
	fmt.Fprintf(out, "== %s ==\n", t.title)
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = c + strings.Repeat(" ", widths[i]-len(c))
		}
		fmt.Fprintln(out, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	for _, n := range t.notes {
		fmt.Fprintf(out, "note: %s\n", n)
	}
	fmt.Fprintln(out)
}

// report prints the per-tenant, total, and per-replica serving summaries.
func report(out *os.File, model string, rep *dynnoffload.ClusterReport) {
	tab := &table{
		title:  fmt.Sprintf("Serving %s (simulated time)", model),
		header: []string{"tenant", "arrivals", "done", "shed", "quota-shed", "p50-ms", "p99-ms", "p999-ms", "viol", "queue-ms", "peak-MiB"},
	}
	row := func(name string, s dynnoffload.ServeStats) []string {
		return []string{
			name,
			strconv.FormatInt(s.Arrivals, 10),
			strconv.FormatInt(s.Completed, 10),
			strconv.FormatInt(s.Shed, 10),
			strconv.FormatInt(s.QuotaShed, 10),
			msf(s.P50NS), msf(s.P99NS), msf(s.P999NS),
			strconv.FormatInt(s.SLOViolations, 10),
			msf(s.QueueMeanNS),
			fmt.Sprintf("%.1f", float64(s.QuotaPeakBytes)/(1<<20)),
		}
	}
	for _, tr := range rep.Tenants {
		tab.rows = append(tab.rows, row(tr.Name, tr.Stats))
	}
	tab.rows = append(tab.rows, row("TOTAL", rep.Total))
	tab.notes = append(tab.notes,
		fmt.Sprintf("makespan %.3f ms simulated; %d batches, mean size %.2f; device high-water %.1f MiB",
			float64(rep.MakespanNS)/1e6, rep.Total.Batches, rep.MeanBatchSize,
			float64(rep.DeviceHighWater)/(1<<20)))
	tab.print(out)

	attributionReport(out, rep)

	rt := &table{
		title:  "Replicas",
		header: []string{"replica", "dispatches", "done", "busy-ms", "util", "home-tenants"},
	}
	for _, rs := range rep.Replicas {
		var homed []string
		for _, p := range rep.Placements {
			if p.Home == rs.Replica {
				homed = append(homed, fmt.Sprintf("%s (%d/%d home)", p.Tenant, p.HomeServed, p.Requests))
			}
		}
		rt.rows = append(rt.rows, []string{
			strconv.Itoa(rs.Replica),
			strconv.FormatInt(rs.Dispatches, 10),
			strconv.FormatInt(rs.Completed, 10),
			msf(rs.BusyNS),
			fmt.Sprintf("%.2f", rs.Util),
			strings.Join(homed, ", "),
		})
	}
	for _, ev := range rep.ScaleEvents {
		rt.notes = append(rt.notes, fmt.Sprintf("%s to %d replicas at %.3f ms", ev.Reason, ev.Active, float64(ev.AtNS)/1e6))
	}
	rt.notes = append(rt.notes, fmt.Sprintf("peak active replicas: %d", rep.PeakActive))
	rt.print(out)
}

func msf(ns int64) string { return fmt.Sprintf("%.2f", float64(ns)/1e6) }

// attributionReport prints the SLO attribution table: each tenant's (and the
// total's) end-to-end latency decomposed by cause, as percentage shares, with
// the p99 tail's dominant cause as the headline.
func attributionReport(out *os.File, rep *dynnoffload.ClusterReport) {
	if rep.Total.Attribution == nil {
		return
	}
	components := rep.Total.Attribution.All.Named()
	header := []string{"tenant"}
	for _, c := range components {
		header = append(header, c.Name+"-%")
	}
	header = append(header, "tail-dominant")
	at := &table{title: "Latency attribution (share of summed e2e latency; tail = p99 requests)", header: header}
	row := func(name string, a *dynnoffload.LatencyAttribution) {
		if a == nil {
			return
		}
		cells := []string{name}
		total := a.All.TotalNS()
		for _, c := range a.All.Named() {
			cells = append(cells, pct(c.NS, total))
		}
		dom := a.Tail.Dominant()
		cells = append(cells, fmt.Sprintf("%s %s%%", dom.Name, pct(dom.NS, a.Tail.TotalNS())))
		at.rows = append(at.rows, cells)
	}
	for _, tr := range rep.Tenants {
		row(tr.Name, tr.Stats.Attribution)
	}
	row("TOTAL", rep.Total.Attribution)
	tail := rep.Total.Attribution
	dom := tail.Tail.Dominant()
	at.notes = append(at.notes, fmt.Sprintf("p99 tail (%d requests) is %s%% %s",
		tail.TailCount, pct(dom.NS, tail.Tail.TotalNS()), dom.Name))
	at.print(out)
}

// onlineReport prints the online-learning summary: replay-memory fill,
// retrain count and cost, and the windowed mispredict-rate trajectory
// endpoints.
func onlineReport(out *os.File, rep *dynnoffload.ClusterReport) {
	on := rep.Total.Online
	if on == nil {
		return
	}
	ot := &table{
		title:  "Online pilot learning",
		header: []string{"observed", "mispredicts", "retrains", "retrain-ms", "memory", "adapters", "first-window", "last-window"},
	}
	wr := func(r float64) string {
		if r < 0 {
			return "-"
		}
		return fmt.Sprintf("%.3f", r)
	}
	ot.rows = append(ot.rows, []string{
		strconv.FormatInt(on.Observed, 10),
		strconv.FormatInt(on.Mispredicts, 10),
		strconv.FormatInt(on.Retrains, 10),
		msf(on.RetrainNS),
		fmt.Sprintf("%d/%d", on.MemorySize, on.MemoryCap),
		strconv.Itoa(on.AdapterTenants),
		wr(on.FirstWindowRate()),
		wr(on.LastWindowRate()),
	})
	ot.notes = append(ot.notes, "window rates are mispredicts per observation window; see -trajectory for the full curve")
	ot.print(out)
}

// confusionReport prints the pilot's top confused path pairs over the request
// pool — the shape behind the mispredict rate.
func confusionReport(out *os.File, ev dynnoffload.PilotEvalReport) {
	top := ev.TopConfusions(8)
	if len(top) == 0 {
		return
	}
	ct := &table{
		title:  fmt.Sprintf("Pilot confusion on the request pool (accuracy %.3f, %d/%d mispredicted)", ev.Accuracy, ev.Mispredictions, ev.Samples),
		header: []string{"truth path", "predicted", "count"},
	}
	for _, c := range top {
		pred := c.PredictedKey
		if pred == "" {
			pred = "(no path)"
		}
		ct.rows = append(ct.rows, []string{c.TruthKey, pred, strconv.Itoa(c.Count)})
	}
	ct.print(out)
}

// writeTrajectory writes the windowed mispredict-rate curve as JSONL, one
// window per line.
func writeTrajectory(path string, on *dynnoffload.OnlineStats) error {
	if on == nil {
		return errors.New("no online stats in report")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, w := range on.WindowRates {
		if _, err := fmt.Fprintf(f, `{"end_seq":%d,"mispredicts":%d,"window":%d,"rate":%.6f}`+"\n",
			w.EndSeq, w.Mispredicts, w.Window, w.Rate); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d trajectory windows to %s\n", len(on.WindowRates), path)
	return nil
}

// pct renders part/total as a percentage with one decimal ("-" when empty).
func pct(part, total int64) string {
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", 100*float64(part)/float64(total))
}

// writeFlights writes each flight-recorder snapshot to its own JSONL file,
// PREFIX-r<replica>-<reason>.jsonl.
func writeFlights(prefix string, snaps []dynnoffload.FlightSnapshot) error {
	for _, s := range snaps {
		path := fmt.Sprintf("%s-r%d-%s.jsonl", prefix, s.Replica, s.Reason)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := s.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote flight recording (%d events, reason %s) to %s\n", len(s.Events), s.Reason, path)
	}
	return nil
}

// writeTrace dumps the serving span set (queue waits plus every replica's
// device spans on the shared cluster clock) as a Chrome Trace Event file.
func writeTrace(path, model string, linkBW float64, tracer *dynnoffload.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	spans := tracer.Spans()
	meta := dynnoffload.ChromeMeta{Label: model + " (serving)", LinkBWBytesPerSec: linkBW, Samples: tracer.SampleCount()}
	if err := dynnoffload.WriteChromeTrace(f, spans, meta); err != nil {
		return err
	}
	fmt.Printf("wrote %d spans (%d requests) to %s\n", len(spans), tracer.SampleCount(), path)
	fmt.Println("inspect: dynntrace", path, " — or load into https://ui.perfetto.dev")
	return nil
}
