// Command dynnserve plays a multi-tenant serving workload against the
// DyNN-Offload engine on the simulated clock: seeded arrival streams,
// per-tenant GPU-memory quotas with load shedding, SLO-aware continuous
// batching, and per-tenant latency aggregates. Identical flags replay
// bit-identical results at any -workers value.
//
// Usage:
//
//	dynnserve -model Tree-LSTM
//	dynnserve -model MoE -tenants "prio:rate=40,requests=200,slo=2s,quota=0.5;batch:rate=10,requests=50"
//	dynnserve -model Tree-LSTM -trace serve.json -serve :8080
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"dynnoffload/internal/core"
	"dynnoffload/internal/expt"
	"dynnoffload/internal/faults"
	"dynnoffload/internal/obsv"
	"dynnoffload/internal/serve"
)

func main() {
	var (
		model   = flag.String("model", "Tree-LSTM", "zoo model to serve")
		tenants = flag.String("tenants",
			"alpha:rate=2000,requests=120,slo=50ms,quota=0.5;beta:rate=2000,requests=120,slo=50ms,quota=0.5",
			"tenant specs, ';'-separated: name:rate=R[,requests=N][,slo=DUR][,quota=FRACTION][,maxqueue=Q][,seed=S]")
		maxBatch  = flag.Int("maxbatch", 0, "continuous-batch size bound (0 = default)")
		starve    = flag.Duration("starve", 0, "starvation guard age (0 = derive from SLOs, negative = off)")
		onDemand  = flag.Bool("ondemand", false, "force the always-on-demand baseline engine")
		train     = flag.Int("train", 0, "pilot-training samples (default CI scale)")
		test      = flag.Int("test", 0, "request-pool samples")
		neurons   = flag.Int("neurons", 0, "pilot hidden width")
		epochs    = flag.Int("epochs", 0, "pilot training epochs")
		batch     = flag.Int("batch", 0, "DyNN batch size")
		seed      = flag.Uint64("seed", 42, "base seed (tenant seeds derive from it)")
		workers   = flag.Int("workers", 0, "engine fan-out per dispatched batch (0 = GOMAXPROCS)")
		faultSpec = flag.String("faults", "", "deterministic fault injection, e.g. seed=7,rate=0.05[,stall=4]")
		traceFile = flag.String("trace", "", "write the serving trace (queue + device spans) as Chrome Trace Event JSON")
		addr      = flag.String("serve", "", "serve live Prometheus metrics and pprof on this address, then block")
	)
	flag.Parse()

	opts := expt.DefaultOptions()
	if *train > 0 {
		opts.TrainSamples = *train
	}
	if *test > 0 {
		opts.TestSamples = *test
	}
	if *neurons > 0 {
		opts.Neurons = *neurons
	}
	if *epochs > 0 {
		opts.Epochs = *epochs
	}
	if *batch > 0 {
		opts.Batch = *batch
	}
	opts.Seed = *seed
	if err := run(*model, *tenants, opts, settings{
		maxBatch: *maxBatch, starveNS: int64(*starve), onDemand: *onDemand,
		workers: *workers, faultSpec: *faultSpec, traceFile: *traceFile, addr: *addr,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "dynnserve:", err)
		os.Exit(1)
	}
}

type settings struct {
	maxBatch  int
	starveNS  int64
	onDemand  bool
	workers   int
	faultSpec string
	traceFile string
	addr      string
}

func run(model, tenantSpec string, opts expt.Options, st settings) error {
	if st.faultSpec != "" {
		fc, err := faults.ParseSpec(st.faultSpec)
		if err != nil {
			return err
		}
		opts.Faults = fc
	}

	fmt.Printf("building %s bench + pilot...\n", model)
	wb, err := expt.NewSingleModelWorkbench(model, opts)
	if err != nil {
		return err
	}
	mb := wb.Models[0]

	tcs, err := parseTenants(tenantSpec, mb.Platform.GPU.MemBytes, opts.Seed)
	if err != nil {
		return err
	}
	cfg := serve.Config{
		Tenants:         tcs,
		MaxBatch:        st.maxBatch,
		StarvationAgeNS: st.starveNS,
		Workers:         st.workers,
	}
	if st.traceFile != "" {
		cfg.Tracer = obsv.NewTracer()
	}
	var reg *obsv.Registry
	if st.addr != "" {
		reg = obsv.NewRegistry()
		cfg.Registry = reg
		go func() {
			if err := http.ListenAndServe(st.addr, obsv.NewServeMux(reg)); err != nil {
				fmt.Fprintln(os.Stderr, "dynnserve: serve:", err)
				os.Exit(1)
			}
		}()
		fmt.Printf("serving /metrics and /debug/pprof on %s\n", st.addr)
	}

	ecfg := core.DefaultConfig(mb.Platform)
	ecfg.ForceOnDemand = st.onDemand
	ecfg.MemoizeSamples = !st.onDemand
	if opts.Faults.Rate > 0 {
		ecfg.Faults = faults.New(opts.Faults)
	}
	eng := core.NewEngine(ecfg, wb.Pilot)

	rep, err := serve.Run(&serve.Backend{Engine: eng, Pool: mb.Test}, cfg)
	if err != nil {
		return err
	}
	report(os.Stdout, model, rep)

	if st.traceFile != "" {
		if err := writeTrace(st.traceFile, model, mb.Platform.Link.BW, cfg.Tracer); err != nil {
			return err
		}
	}
	if st.addr != "" {
		fmt.Printf("done; still serving on %s (interrupt to exit)\n", st.addr)
		select {}
	}
	return nil
}

// parseTenants parses the ';'-separated tenant spec list. Quotas are device
// fractions; unset seeds derive from the base seed and the tenant's position.
func parseTenants(spec string, gpuMem int64, baseSeed uint64) ([]serve.TenantConfig, error) {
	var tcs []serve.TenantConfig
	for i, one := range strings.Split(spec, ";") {
		one = strings.TrimSpace(one)
		if one == "" {
			continue
		}
		name, kvs, ok := strings.Cut(one, ":")
		if !ok || name == "" {
			return nil, fmt.Errorf("tenant spec %q: want name:key=value,...", one)
		}
		tc := serve.TenantConfig{Name: name, Requests: 100, Seed: baseSeed + uint64(i+1)*7919}
		for _, kv := range strings.Split(kvs, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("tenant %q: bad pair %q", name, kv)
			}
			var err error
			switch k {
			case "rate":
				tc.RatePerSec, err = strconv.ParseFloat(v, 64)
			case "requests":
				tc.Requests, err = strconv.Atoi(v)
			case "slo":
				var d time.Duration
				d, err = time.ParseDuration(v)
				tc.SLONS = int64(d)
			case "quota":
				var f float64
				f, err = strconv.ParseFloat(v, 64)
				tc.QuotaBytes = int64(f * float64(gpuMem))
			case "maxqueue":
				tc.MaxQueue, err = strconv.Atoi(v)
			case "seed":
				tc.Seed, err = strconv.ParseUint(v, 10, 64)
			default:
				err = fmt.Errorf("unknown key %q", k)
			}
			if err != nil {
				return nil, fmt.Errorf("tenant %q: %s: %v", name, kv, err)
			}
		}
		tcs = append(tcs, tc)
	}
	return tcs, nil
}

// report prints the per-tenant and total serving summaries.
func report(out *os.File, model string, rep *serve.Report) {
	tab := &expt.Table{
		Title:  fmt.Sprintf("Serving %s (simulated time)", model),
		Header: []string{"tenant", "arrivals", "done", "shed", "quota-shed", "p50-ms", "p99-ms", "p999-ms", "viol", "queue-ms", "peak-MiB"},
	}
	row := func(name string, s obsv.ServeStats) []string {
		return []string{
			name,
			strconv.FormatInt(s.Arrivals, 10),
			strconv.FormatInt(s.Completed, 10),
			strconv.FormatInt(s.Shed, 10),
			strconv.FormatInt(s.QuotaShed, 10),
			msf(s.P50NS), msf(s.P99NS), msf(s.P999NS),
			strconv.FormatInt(s.SLOViolations, 10),
			msf(s.QueueMeanNS),
			fmt.Sprintf("%.1f", float64(s.QuotaPeakBytes)/(1<<20)),
		}
	}
	for _, tr := range rep.Tenants {
		tab.Rows = append(tab.Rows, row(tr.Name, tr.Stats))
	}
	tab.Rows = append(tab.Rows, row("TOTAL", rep.Total))
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("makespan %.3f ms simulated; %d batches, mean size %.2f; device high-water %.1f MiB",
			float64(rep.MakespanNS)/1e6, rep.Total.Batches, rep.MeanBatchSize,
			float64(rep.DeviceHighWater)/(1<<20)))
	tab.Fprint(out)
}

func msf(ns int64) string { return fmt.Sprintf("%.2f", float64(ns)/1e6) }

// writeTrace dumps the serving span set (queue waits on the host lane plus
// the engine's device spans) as a Chrome Trace Event file.
func writeTrace(path, model string, linkBW float64, tracer *obsv.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	spans := tracer.Spans()
	meta := obsv.ChromeMeta{Label: model + " (serving)", LinkBWBytesPerSec: linkBW, Samples: tracer.SampleCount()}
	if err := obsv.WriteChromeTrace(f, spans, meta); err != nil {
		return err
	}
	fmt.Printf("wrote %d spans (%d requests) to %s\n", len(spans), tracer.SampleCount(), path)
	fmt.Println("inspect: dynntrace", path, " — or load into https://ui.perfetto.dev")
	return nil
}
