// Command dynntrace analyzes Chrome Trace Event Format files written by
// `dynnbench -trace`: it prints the overlap/utilization report derived from
// the simulated-time span set plus an ASCII stream-occupancy timeline, or
// validates a file's structure with -check.
//
// Usage:
//
//	dynntrace trace.json             # overlap report + occupancy timeline
//	dynntrace -blocks trace.json     # also the per-block breakdown
//	dynntrace -requests 10 trace.json # per-request causal timelines (serving traces)
//	dynntrace -check trace.json      # validate structure, exit 1 on errors
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"dynnoffload/internal/obsv"
)

func main() {
	var (
		check    = flag.Bool("check", false, "validate the trace file structure and exit")
		width    = flag.Int("width", 72, "ASCII timeline width in cells")
		blocks   = flag.Bool("blocks", false, "print the per-block critical-path breakdown")
		requests = flag.Int("requests", 0, "print the N slowest per-request causal timelines (request-stamped serving traces)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dynntrace [-check] [-blocks] [-requests N] [-width N] trace.json")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *check, *blocks, *width, *requests); err != nil {
		fmt.Fprintln(os.Stderr, "dynntrace:", err)
		os.Exit(1)
	}
}

func run(path string, check, blocks bool, width, requests int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	if check {
		if err := obsv.CheckChromeTrace(f); err != nil {
			return err
		}
		fmt.Printf("%s: valid Chrome Trace Event Format\n", path)
		return nil
	}

	spans, meta, err := obsv.ReadChromeTrace(f)
	if err != nil {
		return err
	}
	obsv.SortSpans(spans)
	tl := obsv.NewTimeline(spans, meta.LinkBWBytesPerSec)
	o := tl.Overlap()

	if meta.Label != "" {
		fmt.Printf("trace: %s (%d samples, %d spans)\n", meta.Label, meta.Samples, len(spans))
	} else {
		fmt.Printf("trace: %d spans\n", len(spans))
	}
	fmt.Printf("makespan   %12.3f ms simulated\n", msf(o.MakespanNS))
	fmt.Printf("compute    %12.3f ms\n", msf(o.ComputeNS))
	fmt.Printf("transfer   %12.3f ms  (%.1f MB over the link)\n", msf(o.TransferNS), float64(o.TransferBytes)/(1<<20))
	fmt.Printf("  hidden   %12.3f ms  under compute\n", msf(o.HiddenNS))
	fmt.Printf("  exposed  %12.3f ms  on the critical path\n", msf(o.ExposedNS))
	fmt.Printf("overlap efficiency %.1f%%", o.Efficiency*100)
	if meta.LinkBWBytesPerSec > 0 {
		fmt.Printf(", pcie utilization %.1f%%", o.PCIeUtil*100)
	}
	fmt.Println()
	fmt.Println()
	fmt.Println("stream     busy-ms      util   idle-gap p50/p99")
	for _, lane := range []string{obsv.LaneCompute, obsv.LaneH2D, obsv.LaneD2H} {
		g := o.IdleGaps[lane]
		fmt.Printf("%-8s %9.3f  %7.1f%%   %s / %s\n",
			lane, msf(o.LaneBusyNS[lane]), o.LaneUtil[lane]*100, nsUnit(g.P50NS), nsUnit(g.P99NS))
	}
	fmt.Println()
	tl.ASCII(os.Stdout, width)

	if blocks {
		fmt.Println()
		fmt.Println("block  compute-ms  prefetch-ms  evict-ms  ondemand-ms  retry-ms  stall-ms  spans")
		for _, c := range tl.Blocks() {
			fmt.Printf("%5d  %10.3f  %11.3f  %8.3f  %11.3f  %8.3f  %8.3f  %5d\n",
				c.Block, msf(c.ComputeNS), msf(c.PrefetchNS), msf(c.EvictNS),
				msf(c.OnDemandNS), msf(c.RetryNS), msf(c.StallNS), c.Spans)
		}
	}
	if requests > 0 {
		requestReport(spans, requests)
	}
	return nil
}

// requestReport assembles per-request causal timelines from a request-stamped
// serving trace and prints the N slowest: where each request spent its
// lifetime (queue wait vs per-lane device/link occupancy).
func requestReport(spans []obsv.Span, n int) {
	views := obsv.AssembleRequests(spans)
	fmt.Println()
	if len(views) == 0 {
		fmt.Println("no request-stamped spans (write the trace from a serving run)")
		return
	}
	sort.SliceStable(views, func(i, j int) bool {
		return views[i].EndNS-views[i].StartNS > views[j].EndNS-views[j].StartNS
	})
	if n > len(views) {
		n = len(views)
	}
	fmt.Printf("slowest %d of %d requests (e2e = arrival to completion, simulated)\n", n, len(views))
	fmt.Println("request  tenant      replica   e2e-ms  queue-ms  lane occupancy (busy-ms)")
	for _, v := range views[:n] {
		lanes := make([]string, 0, len(v.LaneBusyNS))
		for lane := range v.LaneBusyNS {
			lanes = append(lanes, lane)
		}
		sort.Strings(lanes)
		occ := ""
		for _, lane := range lanes {
			if lane == obsv.LaneHost {
				continue // host lane is queue wait + envelopes, reported separately
			}
			if occ != "" {
				occ += "  "
			}
			occ += fmt.Sprintf("%s=%.3f", lane, msf(v.LaneBusyNS[lane]))
		}
		fmt.Printf("%7d  %-10s  %7d  %7.3f  %8.3f  %s\n",
			v.Request, v.Tenant, v.Replica, msf(v.EndNS-v.StartNS), msf(v.QueueNS), occ)
	}
}

func msf(ns int64) float64 { return float64(ns) / 1e6 }

// nsUnit renders a duration with a readable unit (gaps span ns to ms).
func nsUnit(ns int64) string {
	switch {
	case ns == 0:
		return "-"
	case ns < 1_000:
		return fmt.Sprintf("%dns", ns)
	case ns < 1_000_000:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	}
}
