// Command dynntrace analyzes Chrome Trace Event Format files written by
// `dynnbench -trace`: it prints the overlap/utilization report derived from
// the simulated-time span set plus an ASCII stream-occupancy timeline, or
// validates a file's structure with -check.
//
// Usage:
//
//	dynntrace trace.json             # overlap report + occupancy timeline
//	dynntrace -blocks trace.json     # also the per-block breakdown
//	dynntrace -check trace.json      # validate structure, exit 1 on errors
package main

import (
	"flag"
	"fmt"
	"os"

	"dynnoffload/internal/obsv"
)

func main() {
	var (
		check  = flag.Bool("check", false, "validate the trace file structure and exit")
		width  = flag.Int("width", 72, "ASCII timeline width in cells")
		blocks = flag.Bool("blocks", false, "print the per-block critical-path breakdown")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dynntrace [-check] [-blocks] [-width N] trace.json")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *check, *blocks, *width); err != nil {
		fmt.Fprintln(os.Stderr, "dynntrace:", err)
		os.Exit(1)
	}
}

func run(path string, check, blocks bool, width int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	if check {
		if err := obsv.CheckChromeTrace(f); err != nil {
			return err
		}
		fmt.Printf("%s: valid Chrome Trace Event Format\n", path)
		return nil
	}

	spans, meta, err := obsv.ReadChromeTrace(f)
	if err != nil {
		return err
	}
	obsv.SortSpans(spans)
	tl := obsv.NewTimeline(spans, meta.LinkBWBytesPerSec)
	o := tl.Overlap()

	if meta.Label != "" {
		fmt.Printf("trace: %s (%d samples, %d spans)\n", meta.Label, meta.Samples, len(spans))
	} else {
		fmt.Printf("trace: %d spans\n", len(spans))
	}
	fmt.Printf("makespan   %12.3f ms simulated\n", msf(o.MakespanNS))
	fmt.Printf("compute    %12.3f ms\n", msf(o.ComputeNS))
	fmt.Printf("transfer   %12.3f ms  (%.1f MB over the link)\n", msf(o.TransferNS), float64(o.TransferBytes)/(1<<20))
	fmt.Printf("  hidden   %12.3f ms  under compute\n", msf(o.HiddenNS))
	fmt.Printf("  exposed  %12.3f ms  on the critical path\n", msf(o.ExposedNS))
	fmt.Printf("overlap efficiency %.1f%%", o.Efficiency*100)
	if meta.LinkBWBytesPerSec > 0 {
		fmt.Printf(", pcie utilization %.1f%%", o.PCIeUtil*100)
	}
	fmt.Println()
	fmt.Println()
	fmt.Println("stream     busy-ms      util   idle-gap p50/p99")
	for _, lane := range []string{obsv.LaneCompute, obsv.LaneH2D, obsv.LaneD2H} {
		g := o.IdleGaps[lane]
		fmt.Printf("%-8s %9.3f  %7.1f%%   %s / %s\n",
			lane, msf(o.LaneBusyNS[lane]), o.LaneUtil[lane]*100, nsUnit(g.P50NS), nsUnit(g.P99NS))
	}
	fmt.Println()
	tl.ASCII(os.Stdout, width)

	if blocks {
		fmt.Println()
		fmt.Println("block  compute-ms  prefetch-ms  evict-ms  ondemand-ms  retry-ms  stall-ms  spans")
		for _, c := range tl.Blocks() {
			fmt.Printf("%5d  %10.3f  %11.3f  %8.3f  %11.3f  %8.3f  %8.3f  %5d\n",
				c.Block, msf(c.ComputeNS), msf(c.PrefetchNS), msf(c.EvictNS),
				msf(c.OnDemandNS), msf(c.RetryNS), msf(c.StallNS), c.Spans)
		}
	}
	return nil
}

func msf(ns int64) float64 { return float64(ns) / 1e6 }

// nsUnit renders a duration with a readable unit (gaps span ns to ms).
func nsUnit(ns int64) string {
	switch {
	case ns == 0:
		return "-"
	case ns < 1_000:
		return fmt.Sprintf("%dns", ns)
	case ns < 1_000_000:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	}
}
