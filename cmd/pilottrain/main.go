// Command pilottrain trains the pilot model offline on the dynamic model
// zoo and reports per-model accuracy and inference latency — the paper's
// training system for the pilot model (§V), including the genetic
// hyper-parameter search when -tune is set.
//
//	pilottrain -neurons 512 -train 3000 -test 500
//	pilottrain -tune
package main

import (
	"flag"
	"fmt"
	"os"

	"dynnoffload/internal/dynn"
	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/nn"
	"dynnoffload/internal/pilot"
)

func main() {
	var (
		neurons = flag.Int("neurons", 128, "hidden width per MLP layer")
		epochs  = flag.Int("epochs", 12, "training epochs")
		train   = flag.Int("train", 1500, "training samples per model")
		test    = flag.Int("test", 400, "test samples per model")
		seed    = flag.Uint64("seed", 42, "seed")
		batch   = flag.Int("batch", 8, "DyNN batch size")
		tune    = flag.Bool("tune", false, "run the genetic hyper-parameter search (§V)")
	)
	flag.Parse()

	type modelSet struct {
		name        string
		train, test []*pilot.Example
	}
	var sets []modelSet
	var allTrain []*pilot.Example
	for _, entry := range dynn.DynamicZoo() {
		m := entry.New(*batch, *seed)
		ctx, err := pilot.NewModelContext(m, gpusim.NewCostModel(gpusim.RTXPlatform()), 0, 0)
		if err != nil {
			fatal(err)
		}
		samples := dynn.GenerateSamples(*seed^uint64(len(entry.Name)), *train+*test, 8, 48)
		exs, err := pilot.BuildExamples(ctx, pilot.FeatureConfig{}, samples)
		if err != nil {
			fatal(err)
		}
		sets = append(sets, modelSet{entry.Name, exs[:*train], exs[*train:]})
		allTrain = append(allTrain, exs[:*train]...)
	}

	cfg := pilot.Config{Neurons: *neurons, Epochs: *epochs, Seed: *seed}
	if *tune {
		fmt.Println("genetic hyper-parameter search...")
		tcfg := nn.DefaultTunerConfig()
		tcfg.HiddenChoices = []int{64, 128, 256}
		tcfg.EpochChoices = []int{6, 10, 14}
		tcfg.LRChoices = []float64{0.0005, 0.001, 0.002}
		best, fitness := nn.Tune(tcfg, func(g nn.Genome) float64 {
			p := pilot.New(pilot.Config{Neurons: g.Hidden, Epochs: g.Epochs, LR: g.LR, Seed: *seed})
			p.Train(allTrain)
			var acc float64
			var n int
			for _, s := range sets {
				ev, err := p.Evaluate(s.test)
				if err != nil {
					fatal(err)
				}
				acc += ev.Accuracy * float64(len(s.test))
				n += len(s.test)
			}
			return acc / float64(n)
		})
		fmt.Printf("best genome: hidden=%d lr=%g epochs=%d (accuracy %.3f)\n",
			best.Hidden, best.LR, best.Epochs, fitness)
		cfg = pilot.Config{Neurons: best.Hidden, Epochs: best.Epochs, LR: best.LR, Seed: *seed}
	}

	p := pilot.New(cfg)
	res := p.Train(allTrain)
	fmt.Printf("pilot: %s — trained on %d samples in %v (final loss %.4f)\n",
		p, res.TrainedOn, res.WallClock.Round(1e6), res.FinalLoss)

	fmt.Printf("\n%-12s %-10s %-10s %-12s\n", "model", "accuracy", "mispred", "infer (us)")
	for _, s := range sets {
		ev, err := p.Evaluate(s.test)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-12s %-10.3f %-10s %-12.1f\n",
			s.name, ev.Accuracy, fmt.Sprintf("%d/%d", ev.Mispredictions, len(s.test)), float64(ev.MeanLatency.Nanoseconds())/1e3)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pilottrain:", err)
	os.Exit(1)
}
