// Command dynnlint runs the project's static-analysis suite (internal/lint)
// over module packages: determinism, lockcheck, floatcmp, errdiscipline, and
// panicfree. It is pure stdlib — no analysis frameworks, no network.
//
// Usage:
//
//	dynnlint ./...                  # whole module
//	dynnlint ./internal/core        # one package
//	dynnlint -json ./...            # machine-readable findings
//	dynnlint -analyzers determinism,floatcmp ./...
//	dynnlint -list                  # describe the analyzers
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure. Findings are
// suppressed in source with `//dynnlint:ignore <analyzer> <reason>` on the
// offending line or the line above; the reason is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dynnoffload/internal/lint"
)

func main() {
	var (
		jsonOut   = flag.Bool("json", false, "emit findings as a JSON array")
		analyzers = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		list      = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, an := range lint.All() {
			fmt.Printf("%-14s %s\n", an.Name, an.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynnlint:", err)
		os.Exit(2)
	}

	var names []string
	if *analyzers != "" {
		names = strings.Split(*analyzers, ",")
	}
	selected := lint.ByName(names)
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "dynnlint: no analyzers match %q\n", *analyzers)
		os.Exit(2)
	}

	pkgs, err := lint.LoadModule(root, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynnlint:", err)
		os.Exit(2)
	}
	findings := lint.Run(pkgs, selected)

	// Findings print with paths relative to the working directory.
	cwd, _ := os.Getwd()
	for i := range findings {
		if rel, err := filepath.Rel(cwd, findings[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].File = rel
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "dynnlint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "dynnlint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}
