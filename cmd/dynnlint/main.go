// Command dynnlint runs the project's static-analysis suite (internal/lint)
// over module packages: the five AST passes (determinism, lockcheck,
// floatcmp, errdiscipline, panicfree) plus the four CFG/dataflow passes
// (allocleak, clockunits, spanbalance, facade). It is pure stdlib — no
// analysis frameworks, no network.
//
// The driver is incremental and parallel: per-package results cache under
// <module>/.dynnlint keyed by the content hash of the package, its transitive
// module dependencies, and the analyzer set, so a warm rerun type-checks
// nothing. Packages type-check and analyze on a bounded worker pool.
//
// Usage:
//
//	dynnlint ./...                  # whole module (warm cache)
//	dynnlint ./internal/core        # one package
//	dynnlint -json ./...            # machine-readable findings
//	dynnlint -sarif lint.sarif ./...  # SARIF 2.1.0 for code scanning
//	dynnlint -nocache -jobs 1 ./... # cold, serial
//	dynnlint -analyzers allocleak,spanbalance ./...
//	dynnlint -list                  # describe the analyzers
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure. Findings are
// suppressed in source with `//dynnlint:ignore <analyzer> <reason>` on the
// offending line or the line above; the reason is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dynnoffload/internal/lint"
)

func main() {
	var (
		jsonOut   = flag.Bool("json", false, "emit findings as a JSON array")
		sarifOut  = flag.String("sarif", "", "write findings as SARIF 2.1.0 to this file (\"-\" for stdout)")
		analyzers = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		list      = flag.Bool("list", false, "list analyzers and exit")
		nocache   = flag.Bool("nocache", false, "disable the incremental result cache")
		cacheDir  = flag.String("cachedir", "", "cache directory (default <module>/.dynnlint)")
		jobs      = flag.Int("jobs", 0, "max parallel type-check/analysis workers (default GOMAXPROCS)")
		stats     = flag.Bool("stats", false, "print cache/load statistics to stderr")
	)
	flag.Parse()

	if *list {
		for _, an := range lint.All() {
			fmt.Printf("%-14s %s\n", an.Name, an.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynnlint:", err)
		os.Exit(2)
	}

	var names []string
	if *analyzers != "" {
		names = strings.Split(*analyzers, ",")
	}
	selected := lint.ByName(names)
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "dynnlint: no analyzers match %q\n", *analyzers)
		os.Exit(2)
	}

	opts := lint.Options{Analyzers: selected, Jobs: *jobs}
	if !*nocache {
		opts.CacheDir = *cacheDir
		if opts.CacheDir == "" {
			opts.CacheDir = filepath.Join(root, ".dynnlint")
		}
	}
	res, err := lint.Analyze(root, patterns, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynnlint:", err)
		os.Exit(2)
	}
	findings := res.Findings
	if *stats {
		fmt.Fprintf(os.Stderr, "dynnlint: %d package(s): %d cached, %d analyzed, %d loaded\n",
			res.Stats.Packages, res.Stats.CacheHits, res.Stats.CacheMisses, res.Stats.LoadedPackages)
	}

	if *sarifOut != "" {
		out := os.Stdout
		if *sarifOut != "-" {
			f, err := os.Create(*sarifOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dynnlint:", err)
				os.Exit(2)
			}
			defer f.Close()
			out = f
		}
		if err := lint.WriteSARIF(out, root, selected, findings); err != nil {
			fmt.Fprintln(os.Stderr, "dynnlint:", err)
			os.Exit(2)
		}
	}

	// Findings print with paths relative to the working directory.
	cwd, _ := os.Getwd()
	for i := range findings {
		if rel, err := filepath.Rel(cwd, findings[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].File = rel
		}
	}

	switch {
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "dynnlint:", err)
			os.Exit(2)
		}
	case *sarifOut == "-":
		// SARIF already went to stdout; keep it valid JSON.
	default:
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut && *sarifOut != "-" {
			fmt.Fprintf(os.Stderr, "dynnlint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}
