// Command tracegen emits the dynamic execution trace of one DyNN training
// iteration as JSON — the paper's "execution trace generator" (§V), whose
// output feeds the Sentinel partition simulator and the pilot-training
// sample generator.
//
//	tracegen -model Tree-LSTM -sample 3 > trace.json
package main

import (
	"flag"
	"fmt"
	"os"

	"dynnoffload"
)

func main() {
	var (
		model  = flag.String("model", "Tree-LSTM", "zoo model name (see dynnbench -exp table2)")
		batch  = flag.Int("batch", 8, "batch size")
		sample = flag.Int("sample", 0, "which synthetic sample to resolve")
		seed   = flag.Uint64("seed", 42, "sample-stream seed")
	)
	flag.Parse()

	m, err := dynnoffload.ZooModel(*model, *batch, *seed)
	if err != nil {
		fatal(err)
	}
	sys, err := dynnoffload.NewSystem(m, dynnoffload.WithPlatform(dynnoffload.A100Platform()))
	if err != nil {
		fatal(err)
	}
	samples := dynnoffload.GenerateSamples(*seed, *sample+1, 8, 48)
	tr, err := sys.Trace(samples[*sample])
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "model=%s ops=%d tensors=%d bytes=%d compute=%.3fms\n",
		m.Name(), len(tr.Records), len(tr.Tensors), tr.TotalBytes(), float64(tr.TotalTimeNS())/1e6)
	if err := tr.WriteJSON(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
