// Command dynnoffload simulates training one zoo model under a chosen
// memory-management policy on a chosen GPU budget — the end-to-end usage of
// the paper's Fig 6 ("only Line 4 and Line 6 need to be added"), as a CLI.
//
//	dynnoffload -model var-BERT -policy dynn-offload -budget-mb 512
//	dynnoffload -model Tree-CNN -policy dtr -budget-frac 0.5
package main

import (
	"flag"
	"fmt"
	"os"

	"dynnoffload"
)

func main() {
	var (
		model      = flag.String("model", "Tree-LSTM", "zoo model name")
		policy     = flag.String("policy", "dynn-offload", "pytorch | uvm | dtr | zero-offload | dynn-offload")
		batch      = flag.Int("batch", 8, "batch size")
		budgetMB   = flag.Int64("budget-mb", 0, "GPU memory budget in MiB (0 = full device)")
		budgetFrac = flag.Float64("budget-frac", 0, "GPU budget as a fraction of the model footprint (overrides -budget-mb)")
		samples    = flag.Int("samples", 64, "iterations to simulate")
		train      = flag.Int("train", 1200, "pilot-training samples (dynn-offload only)")
		neurons    = flag.Int("neurons", 128, "pilot hidden width")
		seed       = flag.Uint64("seed", 42, "seed")
	)
	flag.Parse()

	m, err := dynnoffload.ZooModel(*model, *batch, *seed)
	if err != nil {
		fatal(err)
	}
	plat := dynnoffload.A100Platform()

	// Probe the footprint to apply fractional budgets.
	probe, err := dynnoffload.NewSystem(m, dynnoffload.WithPlatform(plat))
	if err != nil {
		fatal(err)
	}
	corpus := dynnoffload.GenerateSamples(*seed, *train+*samples, 8, 48)
	tr, err := probe.Trace(corpus[len(corpus)-1])
	if err != nil {
		fatal(err)
	}
	switch {
	case *budgetFrac > 0:
		plat = plat.WithMemory(int64(*budgetFrac * float64(tr.TotalBytes())))
	case *budgetMB > 0:
		plat = plat.WithMemory(*budgetMB << 20)
	}
	fmt.Printf("model=%s params=%.2fM footprint=%dMiB gpu=%dMiB policy=%s\n",
		m.Name(), float64(dynnoffload.ParamCount(m))/1e6, tr.TotalBytes()>>20, plat.GPU.MemBytes>>20, *policy)

	sys, err := dynnoffload.NewSystem(m,
		dynnoffload.WithPlatform(plat),
		dynnoffload.WithPilotConfig(dynnoffload.PilotConfig{Neurons: *neurons, Seed: *seed}),
	)
	if err != nil {
		fatal(err)
	}

	if *policy == "dynn-offload" {
		if _, err := sys.TrainPilot(corpus[:*train]); err != nil {
			fatal(err)
		}
		rep, err := sys.TrainEpoch(corpus[*train : *train+*samples])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("epoch: %s\n", rep.Breakdown)
		fmt.Printf("per-iteration: %.3f ms; mispredictions: %d/%d (cache hits %d)\n",
			float64(rep.Breakdown.TotalNS())/1e6/float64(rep.Samples), rep.Mispredictions, rep.Samples, rep.CacheHits)
		fmt.Printf("pilot overhead: %.1f us/iter inference + %.1f us/iter mapping\n",
			float64(rep.PilotNS)/1e3/float64(rep.Samples), float64(rep.MappingNS)/1e3/float64(rep.Samples))
		return
	}

	runner, err := sys.Runner(*policy)
	if err != nil {
		fatal(err)
	}
	exs, err := sys.Examples(corpus[*train : *train+*samples])
	if err != nil {
		fatal(err)
	}
	var total dynnoffload.Breakdown
	for _, ex := range exs {
		bd, err := runner.RunIteration(ex)
		if err != nil {
			fatal(err)
		}
		total = total.Add(bd)
	}
	fmt.Printf("epoch: %s\n", total)
	fmt.Printf("per-iteration: %.3f ms\n", float64(total.TotalNS())/1e6/float64(*samples))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dynnoffload:", err)
	os.Exit(1)
}
