// Command dynnbench regenerates the paper's tables and figures. Each
// experiment prints the same rows/series the paper reports; EXPERIMENTS.md
// records paper-vs-measured values.
//
// Usage:
//
//	dynnbench -list                  # registered experiments and runners
//	dynnbench -exp table1            # one experiment
//	dynnbench -exp all               # everything (slow)
//	dynnbench -exp fig7 -train 6000  # paper-scale pilot training
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strings"

	"dynnoffload"
	"dynnoffload/internal/core"
	"dynnoffload/internal/expt"
	"dynnoffload/internal/faults"
	"dynnoffload/internal/obsv"
)

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment (comma-separated): "+strings.Join(expt.ExperimentNames(), ",")+",all")
		list        = flag.Bool("list", false, "list registered experiments and runners, then exit")
		train       = flag.Int("train", 0, "pilot-training samples per model (default CI scale)")
		test        = flag.Int("test", 0, "evaluation samples per model")
		neurons     = flag.Int("neurons", 0, "pilot hidden width")
		epochs      = flag.Int("epochs", 0, "pilot training epochs")
		batch       = flag.Int("batch", 0, "DyNN batch size")
		seed        = flag.Uint64("seed", 42, "experiment seed")
		workers     = flag.Int("workers", 0, "epoch worker pool size for DyNN-Offload epochs (0 = serial, -1 = GOMAXPROCS)")
		stats       = flag.String("stats", "", "write per-sample JSONL observability events to this file")
		statsJSON   = flag.String("statsjson", "", "write aggregate per-model RunStats JSON for the parallel experiment to this file")
		faultSpec   = flag.String("faults", "", "deterministic fault injection, e.g. seed=7,rate=0.05[,stall=4]")
		clusterJSON = flag.String("clusterjson", "", "write the clustersweep capacity curves (QPS vs GPU count per model) as JSON to this file")
		traceFile   = flag.String("trace", "", "run one traced epoch of -model and write a Chrome Trace Event Format JSON file (Perfetto-loadable); skips -exp")
		benchJSON   = flag.String("benchjson", "", "time the hot paths of -model (graph_resolve, des_iteration, plan_cache_hit/miss, serve_step, online_retrain) and write the results as JSON to this file (e.g. BENCH_PR10.json); skips -exp")
		benchIters  = flag.Int("benchiters", 200, "iterations per -benchjson hot-path loop")
		benchBase   = flag.String("benchbaseline", "", "with -benchjson: committed baseline JSON to compare against; exits 1 on any ns/op regression beyond -benchregress")
		benchMaxReg = flag.Float64("benchregress", 25, "with -benchbaseline: maximum tolerated ns/op regression, percent")
		model       = flag.String("model", "Tree-LSTM", "zoo model for -trace")
		traceWall   = flag.Bool("tracewall", false, "annotate the -trace spans with wall-clock worker data (trace is then not bit-identical across runs)")
		serve       = flag.String("serve", "", "serve live Prometheus metrics and net/http/pprof on this address (e.g. :8080) while experiments run, then block")
	)
	flag.Parse()

	if *list {
		printList(os.Stdout)
		return
	}

	opts := expt.DefaultOptions()
	if *train > 0 {
		opts.TrainSamples = *train
	}
	if *test > 0 {
		opts.TestSamples = *test
	}
	if *neurons > 0 {
		opts.Neurons = *neurons
	}
	if *epochs > 0 {
		opts.Epochs = *epochs
	}
	if *batch > 0 {
		opts.Batch = *batch
	}
	opts.Seed = *seed
	opts.Workers = *workers
	if opts.Workers < 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if *faultSpec != "" {
		fc, err := faults.ParseSpec(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynnbench:", err)
			os.Exit(1)
		}
		opts.Faults = fc
	}

	var sink obsv.Sink
	if *stats != "" {
		f, err := os.Create(*stats)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynnbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		sink = obsv.NewJSONLSink(f)
	}

	var reg *obsv.Registry
	if *serve != "" {
		reg = obsv.NewRegistry()
		opts.Metrics = reg
		go func() {
			if err := http.ListenAndServe(*serve, obsv.NewServeMux(reg)); err != nil {
				fmt.Fprintln(os.Stderr, "dynnbench: serve:", err)
				os.Exit(1)
			}
		}()
		fmt.Printf("serving /metrics and /debug/pprof on %s\n", *serve)
	}

	var err error
	if *traceFile != "" {
		err = runTrace(*traceFile, *model, opts, *traceWall, reg)
	} else if *benchJSON != "" {
		err = runMicroBench(*benchJSON, *model, *benchIters, opts, *benchBase, *benchMaxReg)
	} else {
		err = run(*exp, opts, sink, *statsJSON, *clusterJSON)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynnbench:", err)
		os.Exit(1)
	}
	if *serve != "" {
		fmt.Printf("done; still serving on %s (interrupt to exit)\n", *serve)
		select {}
	}
}

// runTrace runs one traced epoch of the named zoo model and writes the span
// set as a Chrome Trace Event Format file, printing the overlap summary.
func runTrace(path, model string, opts expt.Options, wall bool, reg *obsv.Registry) error {
	fmt.Printf("building %s bench + pilot...\n", model)
	wb, err := expt.NewSingleModelWorkbench(model, opts)
	if err != nil {
		return err
	}
	mb := wb.Models[0]
	var topts []obsv.TracerOption
	if wall {
		topts = append(topts, obsv.WithWallTime())
	}
	tracer := obsv.NewTracer(topts...)
	rec := obsv.NewRecorder(model, opts.Workers, nil)
	reg.Register(rec)
	eng := wb.Engine(mb)
	workers := opts.Workers
	if workers == 0 {
		workers = 1
	}
	rep, err := eng.ParallelRunEpoch(mb.Test, core.EpochOptions{Workers: workers, Tracer: tracer, Recorder: rec})
	if err != nil {
		return err
	}
	spans := tracer.Spans()
	o := obsv.NewTimeline(spans, mb.Platform.Link.BW).Overlap()
	rec.SetOverlap(o)
	rec.Finish()

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	meta := obsv.ChromeMeta{Label: model, LinkBWBytesPerSec: mb.Platform.Link.BW, Samples: tracer.SampleCount()}
	if err := obsv.WriteChromeTrace(f, spans, meta); err != nil {
		return err
	}
	fmt.Printf("wrote %d spans (%d samples) to %s\n", len(spans), tracer.SampleCount(), path)
	fmt.Printf("epoch: %d samples, %d mispredictions; makespan %.3f ms simulated\n",
		rep.Samples, rep.Mispredictions, float64(o.MakespanNS)/1e6)
	fmt.Printf("overlap efficiency %.1f%% (hidden %.3f ms / transfer %.3f ms), pcie util %.1f%%\n",
		o.Efficiency*100, float64(o.HiddenNS)/1e6, float64(o.TransferNS)/1e6, o.PCIeUtil*100)
	fmt.Println("inspect: dynntrace", path, " — or load into https://ui.perfetto.dev")
	return nil
}

// runMicroBench times the runtime's hot paths (expt.MicroBench) for the
// named zoo model and writes the results as indented JSON (e.g.
// BENCH_PR8.json). With a baseline file it then applies the benchmark-
// regression gate: any ns/op beyond maxRegress percent over the committed
// baseline fails the run.
func runMicroBench(path, model string, iters int, opts expt.Options, baseline string, maxRegress float64) error {
	fmt.Printf("building %s bench + pilot...\n", model)
	wb, err := expt.NewSingleModelWorkbench(model, opts)
	if err != nil {
		return err
	}
	results, err := expt.MicroBench(wb, model, iters)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("%-16s %10d iters  %12.1f ns/op\n", r.Name, r.Iters, r.NsPerOp)
	}
	fmt.Printf("wrote %d benchmark records to %s\n", len(results), path)
	if baseline == "" {
		return nil
	}

	raw, err := os.ReadFile(baseline)
	if err != nil {
		return fmt.Errorf("benchcheck baseline: %w", err)
	}
	var base []expt.MicroBenchResult
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("benchcheck baseline %s: %w", baseline, err)
	}
	lines, cmpErr := expt.CompareBench(results, base, maxRegress)
	fmt.Printf("benchcheck against %s (limit +%.0f%%):\n", baseline, maxRegress)
	for _, l := range lines {
		fmt.Println(" ", l)
	}
	return cmpErr
}

// printList writes the experiment and runner registries — the same sources
// the -exp dispatch and usage string are built from.
func printList(out *os.File) {
	fmt.Fprintln(out, "experiments (-exp, * = in '-exp all'):")
	for _, e := range expt.Experiments() {
		marker := " "
		if e.InAll {
			marker = "*"
		}
		fmt.Fprintf(out, "  %-17s %s %s\n", e.Name, marker, e.Desc)
	}
	fmt.Fprintln(out, "runners (dynnoffload.RunnerNames):")
	for _, n := range dynnoffload.RunnerNames() {
		fmt.Fprintf(out, "  %s\n", n)
	}
}

func run(exp string, opts expt.Options, sink obsv.Sink, statsJSON, clusterJSON string) error {
	out := os.Stdout

	var wb *expt.Workbench
	getWB := func() (*expt.Workbench, error) {
		if wb != nil {
			return wb, nil
		}
		fmt.Fprintln(out, "building workbench (model contexts + pilot training)...")
		var err error
		wb, err = expt.NewWorkbench(opts)
		return wb, err
	}

	names := strings.Split(exp, ",")
	if exp == "all" {
		names = expt.AllExperimentNames()
	}
	for _, name := range names {
		e, ok := expt.LookupExperiment(name)
		if !ok {
			return fmt.Errorf("unknown experiment %q (see dynnbench -list)", name)
		}
		var w *expt.Workbench
		var err error
		if e.NeedsWorkbench {
			if w, err = getWB(); err != nil {
				return err
			}
		}
		var tab *expt.Table
		if name == "parallel" {
			// Special case: parallel threads the CLI's JSONL sink and emits
			// the per-model RunStats JSON, which the registry's uniform
			// signature doesn't carry.
			n := opts.Workers
			if n <= 1 {
				n = runtime.GOMAXPROCS(0)
			}
			var stats []obsv.RunStats
			tab, stats = expt.ParallelSpeedup(w, n, sink)
			if statsJSON != "" {
				if werr := writeStatsJSON(statsJSON, stats); werr != nil {
					return werr
				}
				fmt.Fprintf(out, "wrote %d RunStats records to %s\n", len(stats), statsJSON)
			}
		} else if name == "clustersweep" && clusterJSON != "" {
			// Special case: -clusterjson persists the machine-readable
			// capacity curves alongside the printed table.
			var stats []expt.ClusterSweepStat
			stats, err = expt.ClusterSweepStats(w)
			if err == nil {
				if werr := writeClusterJSON(clusterJSON, stats); werr != nil {
					return werr
				}
				fmt.Fprintf(out, "wrote %d capacity curves to %s\n", len(stats), clusterJSON)
				tab = expt.ClusterSweepTable(stats)
			}
		} else {
			tab, err = e.Run(w, opts)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		tab.Fprint(out)
	}
	return nil
}

// writeStatsJSON persists the aggregate per-model RunStats of a benchmark run
// as indented JSON (e.g. BENCH_PR2.json).
func writeStatsJSON(path string, stats []obsv.RunStats) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(stats)
}

// writeClusterJSON persists the cluster capacity curves as indented JSON
// (e.g. BENCH_PR6.json).
func writeClusterJSON(path string, stats []expt.ClusterSweepStat) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(stats)
}
