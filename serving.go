package dynnoffload

import (
	"fmt"

	"dynnoffload/internal/core"
	"dynnoffload/internal/dynn"
	"dynnoffload/internal/obsv"
	"dynnoffload/internal/online"
	"dynnoffload/internal/serve"
)

// Re-exported serving types. ServeConfig describes the tenants (offered load,
// GPU-memory quota, latency SLO) and scheduler bounds; ServeReport carries
// per-tenant and total latency aggregates on the simulated clock.
type (
	ServeConfig       = serve.Config
	ServeTenant       = serve.TenantConfig
	ServeReport       = serve.Report
	ServeTenantReport = serve.TenantReport
	ServeStats        = obsv.ServeStats
)

// Re-exported request-lifecycle observability types. AttributionComponents is
// the exact decomposition of a request's end-to-end latency into named causes
// (components sum to the latency to the nanosecond); LatencyAttribution
// aggregates it per tenant and for the p99 tail inside ServeStats. The flight
// recorder keeps a bounded per-replica ring of lifecycle events (enable via
// ServeConfig.Flight), snapshotted on SLO breach, fault-ladder degradation, or
// engine capacity exhaustion, and unconditionally at end of run; snapshots
// ride in ServeReport.Flights (or a ServeFlightError when the run aborts) and
// serialize to JSONL with FlightSnapshot.WriteJSONL. RequestView reassembles
// one cluster-wide causal timeline per request from a request-stamped trace.
type (
	AttributionComponents = obsv.AttributionComponents
	AttributionComponent  = obsv.AttributionComponent
	LatencyAttribution    = obsv.LatencyAttribution
	FlightConfig          = obsv.FlightConfig
	FlightEvent           = obsv.FlightEvent
	FlightSnapshot        = obsv.FlightSnapshot
	ServeFlightError      = serve.FlightError
	RequestView           = obsv.RequestView
)

// Re-exported online-learning types. OnlineConfig (ServeConfig.Online /
// ClusterConfig.Online, or WithOnlineLearning on a cluster) closes the
// serve→pilot feedback loop: completed requests feed a bounded replay memory
// and the pilot retrains in-loop every TrainingInterval observations on
// seeded minibatches, with optional per-tenant adapter pilots. Retrain stalls
// are charged to the host timeline and attributed to the pilot_retrain SLO
// component. OnlineStats rides in ServeStats.Online with the run's retrain
// counts and windowed mispredict-rate trajectory.
type (
	OnlineConfig     = online.Config
	OnlineStats      = obsv.OnlineStats
	OnlineWindowRate = obsv.OnlineWindowRate
)

// AssembleRequests groups request-stamped spans (Cluster.Serve traces) into
// per-request timelines with per-lane occupancy.
var AssembleRequests = obsv.AssembleRequests

// Serving defaults, re-exported from the serving layer.
const (
	DefaultServeMaxBatch   = serve.DefaultMaxBatch
	DefaultServeMaxQueue   = serve.DefaultMaxQueue
	DefaultScaleWindow     = serve.DefaultScaleWindow
	DefaultFlightEvents    = obsv.DefaultFlightEvents
	DefaultFlightSnapshots = obsv.DefaultFlightSnapshots
)

// MetricsRegistry collects live recorders for Prometheus exposition; wire it
// into ServeConfig.Registry and mount NewMetricsMux on an HTTP server.
type MetricsRegistry = obsv.Registry

var (
	NewMetricsRegistry = obsv.NewRegistry
	NewMetricsMux      = obsv.NewServeMux
)

// Serve runs the multi-tenant serving front-end over this system's offload
// engine: seeded per-tenant arrival streams draw requests from the sample
// pool, admission control enforces GPU-memory quotas with backpressure and
// load shedding, and an SLO-aware scheduler forms continuous batches that
// dispatch through the engine. Everything advances on the simulated clock, so
// identical (seed, config) inputs replay bit-identical scheduling decisions
// and latency aggregates at any worker count.
//
// The serving engine memoizes repeated requests (Config.MemoizeSamples): a
// re-submitted identical job reuses its recorded resolution instead of
// repeating a mis-prediction. The system's training-epoch engine is untouched
// — serving runs on its own engine so cache state never leaks between the
// two worlds.
func (s *System) Serve(pool []*dynn.Sample, cfg ServeConfig) (*ServeReport, error) {
	if s.pilot == nil {
		return nil, fmt.Errorf("dynnoffload: %w (call TrainPilot)", ErrPilotNotTrained)
	}
	exs, err := s.Examples(pool)
	if err != nil {
		return nil, err
	}
	ecfg := s.engineConfig()
	ecfg.MemoizeSamples = true
	eng := core.NewEngine(ecfg, s.pilot)
	if cfg.Workers == 0 {
		cfg.Workers = s.cfg.Workers
	}
	return serve.Run(&serve.Backend{Engine: eng, Pool: exs}, cfg)
}
