GO ?= go

.PHONY: build test check race race-full fmt vet bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Race-check the concurrent runtime (sharded cache, parallel epochs, pilot).
race:
	$(GO) test -race ./internal/core/... ./internal/obsv/... ./internal/pilot/...

# Race-check everything (slow).
race-full:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# The tier-1 gate: build, vet, formatting, full tests, and the race pass
# over the concurrent packages.
check: build vet fmt test race
	@echo "check: OK"
