GO ?= go
FUZZTIME ?= 20s
COVER_MIN ?= 70
BENCH_BASELINE ?= BENCH_PR10.json
BENCH_REGRESS ?= 25

.PHONY: build test check race race-full fmt vet lint bench benchcheck fuzz cover trace serve-smoke cluster-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Project-specific static analysis (internal/lint): determinism, lock
# copies, float equality, error discipline, and library panics. Fails on any
# unsuppressed finding.
lint:
	$(GO) run ./cmd/dynnlint ./...

# Race-check the concurrent runtime (sharded cache, parallel epochs, pilot),
# the packages the fault injector threads through (simulator, counters), and
# the serving/cluster layers (admission, dispatch, the DES runtime).
race:
	$(GO) test -race ./internal/core/... ./internal/obsv/... ./internal/pilot/... \
		./internal/gpusim/... ./internal/faults/... \
		./internal/serve/... ./internal/distributed/...

# Race-check everything (slow).
race-full:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# Benchmark-regression gate: re-run the hot-path suite (graph_resolve,
# des_iteration, plan_cache_hit/miss, serve_step, online_retrain) and fail on
# any ns/op more than BENCH_REGRESS% over the committed baseline. Leaves
# bench-current.json behind for inspection / CI artifact upload.
benchcheck:
	$(GO) run ./cmd/dynnbench -benchjson bench-current.json \
		-benchbaseline $(BENCH_BASELINE) -benchregress $(BENCH_REGRESS)

# Native Go fuzzing of graph resolution and the Sentinel partitioner. Each
# -fuzz pattern needs its own go test invocation; seed corpora live under the
# packages' testdata/fuzz/. CI runs this with a short FUZZTIME as a smoke
# pass; raise it locally to dig (e.g. make fuzz FUZZTIME=10m).
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzResolve$$' -fuzztime $(FUZZTIME) ./internal/dynn
	$(GO) test -run '^$$' -fuzz '^FuzzPartition$$' -fuzztime $(FUZZTIME) ./internal/sentinel
	$(GO) test -run '^$$' -fuzz '^FuzzPlanSignature$$' -fuzztime $(FUZZTIME) ./internal/graph

# Coverage gate over the internal packages: fails below COVER_MIN% total.
# Leaves coverage.out behind for inspection / CI artifact upload.
cover:
	$(GO) test -coverprofile=coverage.out ./internal/...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "total coverage: $$total% (minimum $(COVER_MIN)%)"; \
	awk -v t="$$total" -v min="$(COVER_MIN)" 'BEGIN { exit !(t+0 >= min+0) }' || \
		{ echo "coverage below $(COVER_MIN)%"; exit 1; }

# Timeline-tracing smoke: record a small traced epoch, validate the Chrome
# Trace Event file, and render the overlap report. Leaves trace.json behind
# for inspection / CI artifact upload.
trace:
	$(GO) run ./cmd/dynnbench -trace trace.json -model Tree-LSTM \
		-train 200 -test 40 -epochs 4 -workers 2
	$(GO) run ./cmd/dynntrace -check trace.json
	$(GO) run ./cmd/dynntrace trace.json

# Serving smoke at CI scale: a two-tenant dynnserve run over the engine and
# the on-demand baseline, then the offered-load sweep (max sustainable QPS at
# the fixed p99 SLO) on one migrating model. The engine run records the
# flight recorder (flight-serve-*.jsonl) and its report — including the SLO
# attribution table — lands in serve-attribution.txt for inspection / CI
# artifact upload. A third run turns on online pilot learning and leaves the
# windowed mispredict-rate trajectory (serve-trajectory.jsonl) behind.
serve-smoke:
	$(GO) run ./cmd/dynnserve -model Tree-LSTM -train 200 -test 40 -epochs 4 \
		-flight flight-serve \
		-tenants "alpha:rate=2000,requests=60,slo=50ms,quota=0.5;beta:rate=2000,requests=60,slo=50ms,quota=0.5" \
		> serve-attribution.txt
	cat serve-attribution.txt
	$(GO) run ./cmd/dynnserve -model Tree-LSTM -train 200 -test 40 -epochs 4 -ondemand \
		-tenants "alpha:rate=2000,requests=60,slo=50ms,quota=0.5;beta:rate=2000,requests=60,slo=50ms,quota=0.5"
	$(GO) run ./cmd/dynnserve -model Tree-LSTM -train 200 -test 40 -epochs 4 \
		-online -interval 8 -trajectory serve-trajectory.jsonl \
		-tenants "alpha:rate=2000,requests=60,slo=50ms,quota=0.5;beta:rate=2000,requests=60,slo=50ms,quota=0.5"
	$(GO) run ./cmd/dynnbench -exp servesweep -train 200 -test 40 -epochs 4
	$(GO) run ./cmd/dynnbench -exp onlinesweep -train 200 -test 40 -epochs 4

# Cluster smoke at CI scale: a 4-replica elastic serving run through the
# public facade (cmd/dynnserve -gpus), a data-parallel Fig 10 epoch on the
# cluster DES runtime, and the capacity sweep (max sustainable QPS vs GPU
# count at fixed p99 SLO) with its machine-readable curves left behind for
# inspection / CI artifact upload. The serving run leaves the cluster
# attribution report (cluster-attribution.txt), per-replica flight-recorder
# snapshots (flight-cluster-*.jsonl), and a request-stamped trace
# (cluster-trace.json) rendered through dynntrace's per-request timelines.
cluster-smoke:
	$(GO) run ./cmd/dynnserve -model Tree-CNN -batch 12 -gpus 4 -minreplicas 1 \
		-scaleup 100us -scaledown 5ms -train 200 -test 40 -epochs 4 \
		-flight flight-cluster -trace cluster-trace.json \
		-tenants "alpha:rate=2000,requests=60,slo=200ms,quota=0.5;beta:rate=2000,requests=60,slo=200ms,quota=0.5" \
		> cluster-attribution.txt
	cat cluster-attribution.txt
	$(GO) run ./cmd/dynntrace -requests 5 cluster-trace.json
	$(GO) run ./cmd/dynnbench -exp fig10 -train 200 -test 40 -epochs 4
	$(GO) run ./cmd/dynnbench -exp clustersweep -train 200 -test 40 -epochs 4 \
		-clusterjson cluster-sweep.json

# The tier-1 gate: build, vet, formatting, project lint, full tests, and the
# race pass over the concurrent packages.
check: build vet fmt lint test race
	@echo "check: OK"
