GO ?= go

.PHONY: build test check race race-full fmt vet lint bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Project-specific static analysis (internal/lint): determinism, lock
# copies, float equality, error discipline, and library panics. Fails on any
# unsuppressed finding.
lint:
	$(GO) run ./cmd/dynnlint ./...

# Race-check the concurrent runtime (sharded cache, parallel epochs, pilot).
race:
	$(GO) test -race ./internal/core/... ./internal/obsv/... ./internal/pilot/...

# Race-check everything (slow).
race-full:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# The tier-1 gate: build, vet, formatting, project lint, full tests, and the
# race pass over the concurrent packages.
check: build vet fmt lint test race
	@echo "check: OK"
