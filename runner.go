package dynnoffload

import (
	"fmt"
	"sort"
	"sync"

	"dynnoffload/internal/baselines"
	"dynnoffload/internal/core"
	"dynnoffload/internal/pilot"
)

// Runner executes one simulated training iteration per sample under one
// memory-management policy. The DyNN-Offload engine and every baseline
// implement it, so comparison code iterates runners instead of switching on
// name strings. Implementations obtained from System.Runner are safe for
// concurrent RunIteration calls.
type Runner interface {
	// Name is the registry name ("dynn-offload", "pytorch", "uvm", "dtr",
	// "zero-offload", ...).
	Name() string
	// RunIteration simulates one training iteration of the example's
	// ground-truth resolution path and returns its time/traffic breakdown.
	RunIteration(ex *PilotExample) (Breakdown, error)
}

// RunnerFactory builds a runner bound to a system. Factories run once per
// (System, name) — System.Runner memoizes the result.
type RunnerFactory func(*System) (Runner, error)

var (
	runnerMu       sync.RWMutex
	runnerRegistry = map[string]RunnerFactory{}
)

// RegisterRunner adds a policy to the registry, replacing any previous entry
// with the same name. Downstream packages can register custom policies and
// have them picked up by System.Runner and comparison loops.
func RegisterRunner(name string, f RunnerFactory) {
	runnerMu.Lock()
	defer runnerMu.Unlock()
	runnerRegistry[name] = f
}

// RunnerNames lists the registered policy names, sorted.
func RunnerNames() []string {
	runnerMu.RLock()
	defer runnerMu.RUnlock()
	names := make([]string, 0, len(runnerRegistry))
	for n := range runnerRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Runner resolves a registered policy for this system. Results are memoized
// per system, so repeated lookups share one runner (and its state, e.g. the
// DyNN-Offload mis-prediction cache).
func (s *System) Runner(name string) (Runner, error) {
	s.runnerMu.Lock()
	defer s.runnerMu.Unlock()
	if r, ok := s.runners[name]; ok {
		return r, nil
	}
	runnerMu.RLock()
	f, ok := runnerRegistry[name]
	runnerMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("dynnoffload: runner %q: %w", name, ErrUnknownRunner)
	}
	r, err := f(s)
	if err != nil {
		return nil, err
	}
	if s.runners == nil {
		s.runners = map[string]Runner{}
	}
	s.runners[name] = r
	return r, nil
}

func init() {
	RegisterRunner(DyNNOffload, func(s *System) (Runner, error) {
		return &offloadRunner{s: s}, nil
	})
	RegisterRunner(PyTorch, func(s *System) (Runner, error) {
		return &pathRunner{name: PyTorch, run: func(info *pilot.PathInfo) (Breakdown, error) {
			return baselines.PyTorch(info.Analysis, s.cfg.Platform)
		}}, nil
	})
	RegisterRunner(UVM, func(s *System) (Runner, error) {
		return &pathRunner{name: UVM, run: func(info *pilot.PathInfo) (Breakdown, error) {
			return baselines.UVM(info.Analysis, s.cfg.Platform, baselines.DefaultUVMConfig())
		}}, nil
	})
	RegisterRunner(DTR, func(s *System) (Runner, error) {
		return &pathRunner{name: DTR, run: func(info *pilot.PathInfo) (Breakdown, error) {
			return baselines.DTR(info.Analysis, s.cfg.Platform, baselines.DefaultDTRConfig())
		}}, nil
	})
	RegisterRunner(ZeROOffload, func(s *System) (Runner, error) {
		eng := core.NewEngine(core.DefaultConfig(s.cfg.Platform), nil)
		return &pathRunner{name: ZeROOffload, run: func(info *pilot.PathInfo) (Breakdown, error) {
			return baselines.ZeRO(info.Analysis, s.cfg.Platform, s.cfg.Model.Dynamic(),
				baselines.DefaultZeROConfig(), eng.SimulatePartition)
		}}, nil
	})
}

// pathRunner adapts a per-path baseline simulation to the Runner interface:
// it looks the example's ground-truth path up in the model context and hands
// the path analysis to the policy.
type pathRunner struct {
	name string
	run  func(info *pilot.PathInfo) (Breakdown, error)
}

func (r *pathRunner) Name() string { return r.name }

func (r *pathRunner) RunIteration(ex *PilotExample) (Breakdown, error) {
	info := ex.Ctx.PathByKey(ex.TruthKey)
	if info == nil {
		return Breakdown{}, fmt.Errorf("dynnoffload: path %q: %w", ex.TruthKey, ErrUnknownPath)
	}
	return r.run(info)
}

// offloadRunner is the DyNN-Offload engine behind the Runner interface.
type offloadRunner struct{ s *System }

func (r *offloadRunner) Name() string { return DyNNOffload }

func (r *offloadRunner) RunIteration(ex *PilotExample) (Breakdown, error) {
	if r.s.engine == nil {
		return Breakdown{}, fmt.Errorf("dynnoffload: %w (call TrainPilot)", ErrPilotNotTrained)
	}
	res, err := r.s.engine.RunSample(ex)
	return res.Breakdown, err
}
