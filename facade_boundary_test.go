package dynnoffload

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"dynnoffload/internal/lint"
)

// TestCommandsStayBehindFacade parses every command's imports and fails if a
// user-facing binary (dynnserve, dynnoffload, tracegen, ...) reaches into
// dynnoffload/internal/..., or a tooling binary grows an unlisted internal
// dependency. The whitelist is lint.ToolingImports — the same table the
// facade analyzer enforces — so the test and the analyzer can never drift.
// The test remains alongside the analyzer because it also covers ground the
// analyzer cannot: build-tagged files the loader skips and staleness of the
// whitelist itself.
func TestCommandsStayBehindFacade(t *testing.T) {
	entries, err := os.ReadDir("cmd")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no commands under cmd/")
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		allowed := map[string]bool{}
		for _, p := range lint.ToolingImports[e.Name()] {
			allowed[p] = true
		}
		files, err := filepath.Glob(filepath.Join("cmd", e.Name(), "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		if len(files) == 0 {
			t.Errorf("cmd/%s has no Go files", e.Name())
		}
		for _, file := range files {
			f, err := parser.ParseFile(fset, file, nil, parser.ImportsOnly)
			if err != nil {
				t.Fatalf("%s: %v", file, err)
			}
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					t.Fatalf("%s: %v", file, err)
				}
				if !strings.HasPrefix(path, "dynnoffload/internal") {
					continue
				}
				if !allowed[path] {
					t.Errorf("%s imports %s past the public facade; use a dynnoffload re-export or extend lint.ToolingImports with a rationale",
						file, path)
				}
			}
		}
	}
	// The whitelist must not carry stale binaries.
	for name := range lint.ToolingImports {
		if _, err := os.Stat(filepath.Join("cmd", name)); err != nil {
			t.Errorf("lint.ToolingImports lists %q but cmd/%s does not exist", name, name)
		}
	}
}
