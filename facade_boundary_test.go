package dynnoffload

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// toolingImports whitelists the internal packages each harness/tooling binary
// may reach past the facade. Binaries absent from this map are user-facing
// CLIs and must import only the public dynnoffload package — the cluster and
// serving redesign re-exports everything they need, and this test keeps it
// that way.
var toolingImports = map[string][]string{
	// The bench harness IS the experiment layer; it drives internal/expt
	// directly and shares its recorder plumbing.
	"dynnbench": {
		"dynnoffload/internal/core",
		"dynnoffload/internal/expt",
		"dynnoffload/internal/faults",
		"dynnoffload/internal/obsv",
	},
	// The repo linter walks internal packages by construction.
	"dynnlint": {"dynnoffload/internal/lint"},
	// The trace viewer decodes internal/obsv's span schema.
	"dynntrace": {"dynnoffload/internal/obsv"},
	// The pilot training tool pokes at pilot internals on purpose.
	"pilottrain": {
		"dynnoffload/internal/dynn",
		"dynnoffload/internal/gpusim",
		"dynnoffload/internal/nn",
		"dynnoffload/internal/pilot",
	},
}

// TestCommandsStayBehindFacade parses every command's imports and fails if a
// user-facing binary (dynnserve, dynnoffload, tracegen, ...) reaches into
// dynnoffload/internal/..., or a tooling binary grows an unlisted internal
// dependency.
func TestCommandsStayBehindFacade(t *testing.T) {
	entries, err := os.ReadDir("cmd")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no commands under cmd/")
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		allowed := map[string]bool{}
		for _, p := range toolingImports[e.Name()] {
			allowed[p] = true
		}
		files, err := filepath.Glob(filepath.Join("cmd", e.Name(), "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		if len(files) == 0 {
			t.Errorf("cmd/%s has no Go files", e.Name())
		}
		for _, file := range files {
			f, err := parser.ParseFile(fset, file, nil, parser.ImportsOnly)
			if err != nil {
				t.Fatalf("%s: %v", file, err)
			}
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					t.Fatalf("%s: %v", file, err)
				}
				if !strings.HasPrefix(path, "dynnoffload/internal") {
					continue
				}
				if !allowed[path] {
					t.Errorf("%s imports %s past the public facade; use a dynnoffload re-export or extend toolingImports with a rationale",
						file, path)
				}
			}
		}
	}
	// The whitelist must not carry stale binaries.
	for name := range toolingImports {
		if _, err := os.Stat(filepath.Join("cmd", name)); err != nil {
			t.Errorf("toolingImports lists %q but cmd/%s does not exist", name, name)
		}
	}
}
