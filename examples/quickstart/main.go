// Quickstart: train a Tree-LSTM larger than (simulated) GPU memory with
// DyNN-Offload, and compare against unmodified in-memory training, UVM, and
// DTR.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dynnoffload"
)

func main() {
	// 1. A dynamic model: a Tree-LSTM whose composition order (and hence
	// operator stream) depends on each input sentence.
	model := dynnoffload.NewTreeLSTM(dynnoffload.TreeLSTMConfig{
		Levels: 6, Hidden: 256, SeqLen: 16, Batch: 8, Seed: 1,
	})
	fmt.Printf("model: %s, %.2fM params, %d MiB training state\n",
		model.Name(), float64(dynnoffload.ParamCount(model))/1e6, dynnoffload.StateBytes(model)>>20)

	// 2. A platform whose GPU is deliberately too small for the model, so
	// tensors must live in CPU memory and stream over PCIe.
	plat := dynnoffload.RTXPlatform().WithMemory(dynnoffload.MiB(32))

	sys, err := dynnoffload.NewSystem(model,
		dynnoffload.WithPlatform(plat),
		dynnoffload.WithPilotConfig(dynnoffload.PilotConfig{Neurons: 128, Epochs: 12, Seed: 7}),
	)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Train the pilot model offline (§IV-D): it learns to resolve the
	// Tree-LSTM's control flow from the input sample and predict the
	// execution-block partition that hides tensor migration.
	corpus := dynnoffload.GenerateSamples(11, 2400, 8, 48)
	trainSet, testSet := corpus[:2000], corpus[2000:]
	res, err := sys.TrainPilot(trainSet)
	if err != nil {
		log.Fatal(err)
	}
	acc, mispred, _ := sys.PilotAccuracy(testSet)
	fmt.Printf("pilot: trained on %d samples in %v; accuracy %.3f (%d mis-predictions on %d held-out samples)\n",
		res.TrainedOn, res.WallClock.Round(1e6), acc, mispred, len(testSet))

	// 4. Simulate a training epoch under DyNN-Offload.
	rep, err := sys.TrainEpoch(testSet)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dynn-offload epoch: %s\n", rep.Breakdown)

	// 5. Compare one iteration against the baselines via the runner registry.
	sample := testSet[0]
	exs, err := sys.Examples([]*dynnoffload.Sample{sample})
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{dynnoffload.PyTorch, dynnoffload.UVM, dynnoffload.DTR} {
		r, err := sys.Runner(name)
		if err != nil {
			log.Fatal(err)
		}
		bd, err := r.RunIteration(exs[0])
		if err != nil {
			fmt.Printf("%-12s cannot train: %v\n", name, err)
			continue
		}
		fmt.Printf("%-12s %.3f ms/iter\n", name, float64(bd.TotalNS())/1e6)
	}
	blocks, _ := sys.Blocks(sample)
	fmt.Printf("execution blocks for this sample: %d\n", len(blocks))
}
