// AlphaFold scenario: the paper's production-scale DyNN (§I: ~1 TB at
// 128x256 inputs). This example sweeps GPU memory budgets over an
// evoformer-style model with dynamic MSA depth, template usage, and
// recycling count, reproducing the Fig 9 degradation story on one workload:
// DTR's recompute chains blow up superlinearly while DyNN-Offload's
// migration grows roughly linearly until PCIe saturates.
//
//	go run ./examples/alphafold
package main

import (
	"fmt"
	"log"

	"dynnoffload"
)

func main() {
	model := dynnoffload.NewAlphaFold(dynnoffload.AlphaFoldConfig{
		Blocks: 3, SeqLen: 96, MSADim: 64, PairDim: 64, Batch: 8, Seed: 3,
	})
	fmt.Printf("model: %s, %.2fM params\n", model.Name(), float64(dynnoffload.ParamCount(model))/1e6)

	samples := dynnoffload.GenerateSamples(5, 1600, 16, 64)
	trainSet, testSet := samples[:1400], samples[1400:]

	// Footprint probe at full memory.
	probe, err := dynnoffload.NewSystem(model, dynnoffload.WithPlatform(dynnoffload.A100Platform()))
	if err != nil {
		log.Fatal(err)
	}
	tr, err := probe.Trace(testSet[0])
	if err != nil {
		log.Fatal(err)
	}
	total := tr.TotalBytes()
	fmt.Printf("iteration footprint: %d MiB over %d operators\n", total>>20, len(tr.Records))

	fmt.Printf("\n%-8s %-14s %-14s %-14s\n", "budget", "pytorch", "dtr", "dynn-offload")
	for _, frac := range []float64{1.1, 0.8, 0.6, 0.45, 0.3} {
		plat := dynnoffload.A100Platform().WithMemory(int64(frac * float64(total)))
		sys, err := dynnoffload.NewSystem(model,
			dynnoffload.WithPlatform(plat),
			dynnoffload.WithPilotConfig(dynnoffload.PilotConfig{Neurons: 96, Epochs: 10, Seed: 2}),
		)
		if err != nil {
			fmt.Printf("%-8.0f%% offload infeasible: %v\n", frac*100, err)
			continue
		}
		if _, err := sys.TrainPilot(trainSet); err != nil {
			log.Fatal(err)
		}
		exs, err := sys.Examples(testSet[:1])
		if err != nil {
			log.Fatal(err)
		}
		row := fmt.Sprintf("%-7.0f%% ", frac*100)
		for _, name := range []string{dynnoffload.PyTorch, dynnoffload.DTR} {
			r, err := sys.Runner(name)
			if err != nil {
				log.Fatal(err)
			}
			if bd, err := r.RunIteration(exs[0]); err != nil {
				row += fmt.Sprintf("%-14s ", "x")
			} else {
				row += fmt.Sprintf("%-14s ", fmt.Sprintf("%.1fms", float64(bd.TotalNS())/1e6))
			}
		}
		if rep, err := sys.TrainEpoch(testSet[:40]); err != nil {
			row += "x"
		} else {
			row += fmt.Sprintf("%.1fms/iter (%d mispredictions)",
				float64(rep.Breakdown.TotalNS())/1e6/float64(rep.Samples), rep.Mispredictions)
		}
		fmt.Println(row)
	}
}
