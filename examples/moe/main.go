// Mixture-of-experts scenario: switch-style MoE is the paper's motivating
// memory-hungry DyNN class (§I cites a switch-MoE needing 320 GB at
// T5-large parity). This example applies the paper's Table III methodology
// (largest trainable batch under a 200% runtime-overhead cap) to MoE
// routing dynamism.
//
// Note the scale effect the full Table III experiment
// (`dynnbench -exp table3`) explores: at this example's small hidden size,
// recomputation (DTR) is cheap relative to PCIe migration, so DTR posts the
// biggest batch; at the paper's model scales (48+ layers, hidden 1024+,
// long sequences) compute dominates and DyNN-Offload wins 4x+.
//
//	go run ./examples/moe
package main

import (
	"fmt"
	"log"

	"dynnoffload"
)

const maxOverhead = 2.0 // 200%, as in Table III

func main() {
	samples := dynnoffload.GenerateSamples(9, 400, 8, 48)
	probeSample := samples[0]

	// GPU sized so batch 8 fits in memory with little slack.
	base := buildSystem(8, dynnoffload.A100Platform())
	tr, err := base.Trace(probeSample)
	if err != nil {
		log.Fatal(err)
	}
	plat := dynnoffload.A100Platform().WithMemory(tr.TotalBytes() * 11 / 10)
	fmt.Printf("GPU budget: %d MiB\n\n", plat.GPU.MemBytes>>20)

	iterNS := func(sys *dynnoffload.System, name string) (int64, error) {
		r, err := sys.Runner(name)
		if err != nil {
			return 0, err
		}
		exs, err := sys.Examples([]*dynnoffload.Sample{probeSample})
		if err != nil {
			return 0, err
		}
		bd, err := r.RunIteration(exs[0])
		return bd.TotalNS(), err
	}

	idealNS := func(batch int) int64 {
		t, err := iterNS(buildSystem(batch, dynnoffload.A100Platform()), dynnoffload.PyTorch)
		if err != nil {
			log.Fatal(err)
		}
		return t
	}

	timeFor := func(system string, batch int) (int64, error) {
		return iterNS(buildSystem(batch, plat), system)
	}

	fmt.Printf("%-14s %-10s %s\n", "system", "max batch", "vs pytorch")
	var pytorchMax int
	for _, system := range []string{
		dynnoffload.PyTorch, dynnoffload.UVM, dynnoffload.DTR,
	} {
		best := 0
		for batch := 2; batch <= 128; batch *= 2 {
			t, err := timeFor(system, batch)
			if err != nil || float64(t) > float64(idealNS(batch))*(1+maxOverhead) {
				break
			}
			best = batch
		}
		if system == dynnoffload.PyTorch {
			pytorchMax = best
		}
		rel := "-"
		if pytorchMax > 0 {
			rel = fmt.Sprintf("%.1fx", float64(best)/float64(pytorchMax))
		}
		fmt.Printf("%-14s %-10d %s\n", system, best, rel)
	}

	// DyNN-Offload with a trained pilot.
	best := 0
	for batch := 2; batch <= 128; batch *= 2 {
		sys := buildSystem(batch, plat)
		if _, err := sys.TrainPilot(samples[:300]); err != nil {
			break
		}
		rep, err := sys.TrainEpoch(samples[300:320])
		if err != nil {
			break
		}
		perIter := rep.Breakdown.TotalNS() / int64(rep.Samples)
		if float64(perIter) > float64(idealNS(batch))*(1+maxOverhead) {
			break
		}
		best = batch
	}
	rel := "-"
	if pytorchMax > 0 {
		rel = fmt.Sprintf("%.1fx", float64(best)/float64(pytorchMax))
	}
	fmt.Printf("%-14s %-10d %s\n", "dynn-offload", best, rel)
}

func buildSystem(batch int, plat dynnoffload.Platform) *dynnoffload.System {
	model := dynnoffload.NewMoE(dynnoffload.MoEConfig{
		Layers: 4, Hidden: 512, SeqLen: 32, Experts: 4, Batch: batch, Seed: 4,
	})
	sys, err := dynnoffload.NewSystem(model,
		dynnoffload.WithPlatform(plat),
		dynnoffload.WithPilotConfig(dynnoffload.PilotConfig{Neurons: 96, Epochs: 8, Seed: 6}),
	)
	if err != nil {
		log.Fatal(err)
	}
	return sys
}
