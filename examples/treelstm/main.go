// Tree-LSTM unpredictability study: reproduces the paper's Table I analysis
// interactively — why profiling-guided offloading fails for DyNNs. It
// resolves the control flow of thousands of Tree-LSTM samples, measures the
// Jaccard distance of their control vectors against the first sample, and
// shows a shallow heuristic can't predict the decisions while the trained
// pilot model can.
//
//	go run ./examples/treelstm
package main

import (
	"fmt"
	"log"

	"dynnoffload"
	"dynnoffload/internal/metrics"
)

func main() {
	model := dynnoffload.NewTreeLSTM(dynnoffload.TreeLSTMConfig{
		Levels: 6, Hidden: 128, SeqLen: 16, Batch: 4, Seed: 13,
	})
	samples := dynnoffload.GenerateSamples(17, 6000, 8, 48)

	// Part 1: control-flow divergence (Table I).
	static := model.Static()
	base, err := model.Resolve(samples[0])
	if err != nil {
		log.Fatal(err)
	}
	baseBits := base.ControlBits(static)
	var jds []float64
	for _, s := range samples[1:] {
		r, err := model.Resolve(s)
		if err != nil {
			log.Fatal(err)
		}
		jds = append(jds, metrics.Jaccard(baseBits, r.ControlBits(static)))
	}
	sum := metrics.Summarize(jds)
	fmt.Printf("Jaccard distance vs sample #1 over %d samples: mean %.3f, p50 %.3f, p90 %.3f\n",
		sum.N, sum.Mean, sum.P50, sum.P90)
	fmt.Println("-> profiling the first iterations says almost nothing about the rest (Table I)")

	// Part 2: the pilot model CAN predict the dynamism.
	sys, err := dynnoffload.NewSystem(model,
		dynnoffload.WithPlatform(dynnoffload.RTXPlatform().WithMemory(dynnoffload.MiB(64))),
		dynnoffload.WithPilotConfig(dynnoffload.PilotConfig{Neurons: 128, Epochs: 14, Seed: 5}),
	)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.TrainPilot(samples[:5000]); err != nil {
		log.Fatal(err)
	}
	acc, mispred, err := sys.PilotAccuracy(samples[5000:])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pilot accuracy on %d held-out samples: %.3f (%d mis-predictions)\n",
		len(samples)-5000, acc, mispred)
	fmt.Println("-> the dynamism is unpredictable to PGO but learnable (the paper's premise)")
}
